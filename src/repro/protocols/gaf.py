"""GAF baseline — Geographic Adaptive Fidelity (Xu, Heidemann, Estrin,
MobiCom'01), as the paper compares against it (§1, §4).

GAF partitions the plane into the same logical grid and keeps one
*active* node per grid awake; the others duty-cycle: sleep for Ts, wake
into a *discovery* state, broadcast a discovery message, and go back to
sleep if a higher-ranked node owns the grid.  Ranking prefers nodes in
the active state, then longer expected lifetime (enat), then smaller
ID.  Crucially — and this is the paper's critique — GAF has **no
mechanism to wake a sleeping destination**: packets to a sleeping host
are simply lost.  The paper therefore evaluates GAF under "Model 1":
ten infinite-energy endpoint hosts that are always active, act as all
sources/destinations, and never forward traffic.

Substitution note: the original GAF evaluation rode host-by-host AODV.
We route over the grid engine with the active node in the gateway role,
which isolates the energy policy (the thing the paper compares) while
keeping every protocol on one routing substrate.  Two small relaxations
recover what host-by-host AODV gives GAF for free: an always-awake
endpoint answers RREQs addressed to itself, and a forwarder may deliver
directly to a destination in an adjacent grid that has no active node
(radio range 2.5x the cell side makes both physically routine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from repro.core.base import Role
from repro.core.messages import DataEnvelope, Hello, Rrep, Rreq
from repro.core.protocol import GridFamilyProtocol
from repro.des.timer import Timer
from repro.geo.grid import GridCoord
from repro.metrics.collectors import Counters
from repro.net.packet import DataPacket
from repro.protocols.base import ProtocolParams


@dataclass
class GafDiscovery(Hello):
    """GAF's discovery message: a beacon carrying the ranking tuple.

    Subclasses :class:`Hello` so the shared machinery (neighbor active
    node tracking, grid membership) processes it transparently; ``gflag``
    doubles as "I am the active node of this grid".
    """

    size_bytes: ClassVar[int] = 24

    enat: float = 0.0          # estimated node active time (seconds)
    eligible: bool = True      # endpoints never take the active role


@dataclass
class GafParams:
    """GAF duty-cycle timers (Td / Ta / Ts in the GAF paper)."""

    discovery_window_s: float = 0.5
    #: Active-state tenure.  None = adaptive, the GAF paper's rule:
    #: half the node's estimated active time (enat/2), so rotation
    #: frequency tracks battery drain instead of churning routes on a
    #: fixed clock.
    active_time_s: Optional[float] = None
    #: Floor/ceiling for the adaptive tenure.
    min_active_time_s: float = 10.0
    max_active_time_s: float = 300.0
    sleep_time_s: float = 10.0
    #: Multiplicative jitter band on the sleep time (desynchronizes
    #: wakeups across a grid).
    sleep_jitter: float = 0.25
    #: enat is compared in buckets of this width: beacons age between
    #: transmission and comparison, and without coarsening every node
    #: sees its (decayed) own enat below everyone's advertised one and
    #: the whole grid goes to sleep.
    enat_quantum_s: float = 60.0


def _rank(
    active_state: bool, enat: float, node_id: int, quantum: float = 60.0
) -> Tuple[int, float, int]:
    """GAF ranking key; larger wins."""
    bucket = enat if enat == float("inf") else enat // quantum
    return (1 if active_state else 0, bucket, -node_id)


class GafProtocol(GridFamilyProtocol):
    """One GAF node (regular or Model-1 endpoint)."""

    name = "gaf"
    energy_aware = False
    uses_ras = False
    page_sleeping_hosts = False   # GAF's defining limitation

    def __init__(
        self,
        node,
        params: ProtocolParams,
        counters: Optional[Counters] = None,
        gaf: Optional[GafParams] = None,
    ) -> None:
        super().__init__(node, params, counters)
        self.gaf = gaf or GafParams()
        self.decision_timer = Timer(node.sim, self._gaf_decide)
        self.active_timer = Timer(node.sim, self._on_active_expired)
        self.sleep_timer = Timer(node.sim, self._on_sleep_expired)
        #: id -> (active_state, enat, eligible, heard_at) for own cell
        self.gaf_peers: Dict[int, Tuple[bool, float, bool, float]] = {}

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def _enat(self) -> float:
        """Expected remaining active time at idle draw."""
        battery = self.node.battery
        if battery.infinite:
            return float("inf")
        profile = self.node.radio.profile
        from repro.energy.profile import RadioMode

        return battery.remaining_at(self.now) / profile.total_power(RadioMode.IDLE)

    def _my_rank(self):
        return _rank(self.is_gateway, self._enat(), self.node.id,
                     self.gaf.enat_quantum_s)

    def _fresh_gaf_peers(self):
        cutoff = self.now - self.params.hello_period_s * self.params.hello_loss_tolerance
        return [
            (nid, active, enat)
            for nid, (active, enat, eligible, t) in self.gaf_peers.items()
            if t >= cutoff and eligible
        ]

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.my_cell = self.node.cell()
        if self.node.is_endpoint:
            # Model-1 endpoint: always active, beacons so the grid's
            # active node keeps it in its host table, never competes.
            self.role = Role.ACTIVE
            self.hello_timer.start(
                initial_delay=self.rng.uniform(0.0, 0.8 * self.params.hello_period_s)
            )
            return
        self._enter_discovery(initial=True)

    def _enter_discovery(self, initial: bool = False) -> None:
        self.node.wake_up()
        self.role = Role.ACTIVE
        self.my_cell = self.node.cell()
        self.my_gateway = None
        self.my_gateway_level = None
        if not self.hello_timer.running:
            self.hello_timer.start(initial_delay=self.params.hello_period_s)
        self._hello_soon(0.5 * self.gaf.discovery_window_s)
        jitter = self.rng.uniform(0.0, 0.2 * self.gaf.discovery_window_s)
        self.decision_timer.start(self.gaf.discovery_window_s + jitter)
        if initial:
            self.counters.inc("gaf_discoveries")

    def _gaf_decide(self) -> None:
        if self.role is not Role.ACTIVE or self.node.is_endpoint:
            return
        my = self._my_rank()
        for nid, active, enat in self._fresh_gaf_peers():
            if nid == self.node.id:
                continue
            if _rank(active, enat, nid, self.gaf.enat_quantum_s) > my:
                self._gaf_sleep()
                return
        self.become_gateway()

    def become_gateway(self, rtab_snapshot=None, htab_snapshot=None) -> None:
        if self.node.is_endpoint:
            return
        super().become_gateway(rtab_snapshot, htab_snapshot)
        self.decision_timer.cancel()
        self.active_timer.start(self._active_tenure())
        self.counters.inc("gaf_active_terms")

    def _active_tenure(self) -> float:
        if self.gaf.active_time_s is not None:
            return self.gaf.active_time_s
        half_enat = self._enat() / 2.0
        return min(
            max(half_enat, self.gaf.min_active_time_s),
            self.gaf.max_active_time_s,
        )

    def _on_active_expired(self) -> None:
        """Ta elapsed: step down and re-run discovery so grid-mates get
        their turn (GAF's load-balancing rotation)."""
        if self.role is not Role.GATEWAY:
            return
        self.demote_to_active()
        self._enter_discovery()

    def _gaf_sleep(self) -> None:
        if self.role is not Role.ACTIVE or self.node.is_endpoint:
            return
        self.role = Role.SLEEPING
        self.counters.inc("sleeps")
        self.hello_timer.stop()
        self.watch_timer.cancel()
        self.decision_timer.cancel()
        self.node.go_to_sleep()
        base = self.gaf.sleep_time_s
        jit = self.gaf.sleep_jitter
        self.sleep_timer.start(base * self.rng.uniform(1.0 - jit, 1.0 + jit))

    def _on_sleep_expired(self) -> None:
        if self.role is not Role.SLEEPING:
            return
        self._enter_discovery()

    # ------------------------------------------------------------------
    # Beacons
    # ------------------------------------------------------------------
    def _send_hello(self) -> None:
        self._last_hello_sent = self.now
        self.counters.inc("hello_sent")
        me = self.self_candidate()
        self._broadcast(
            GafDiscovery(
                id=self.node.id,
                cell=self.my_cell,
                gflag=self.is_gateway,
                level=me.level,
                dist=me.dist,
                enat=self._enat(),
                eligible=not self.node.is_endpoint,
            )
        )

    def _on_hello(self, h: Hello) -> None:
        if isinstance(h, GafDiscovery) and h.cell == self.my_cell:
            self.gaf_peers[h.id] = (h.gflag, h.enat, h.eligible, self.now)
            # A higher-ranked same-cell node while we hold the active
            # role: GAF demotes the redundant active node immediately.
            if (
                self.is_gateway
                and h.id != self.node.id
                and h.eligible
                and _rank(h.gflag, h.enat, h.id, self.gaf.enat_quantum_s)
                > self._my_rank()
            ):
                self.counters.inc("gaf_demotions")
                self.active_timer.cancel()
                self.demote_to_active()
                self._gaf_sleep()
                return
        super()._on_hello(h)

    def _resolve_gateway_conflict(self, other: Hello) -> None:
        """Two active nodes in one grid: lower GAF rank sleeps.

        Ties in the quantized rank are broken by node id (built into
        :func:`_rank`), so exactly one side sees itself as the loser.
        The winner must *re-assert* so the loser actually hears a
        higher-ranked beacon and steps down; when the tie is id-only
        the re-assert cannot wait on the rate-limited
        :meth:`_hello_response` — a suppressed response leaves both
        nodes active (and beaconing gflag) for up to a full hello
        period.
        """
        if isinstance(other, GafDiscovery):
            if other.id == self.node.id:
                # A stale echo of our own beacon: its aged enat can
                # outrank our freshly decayed one, and "losing" to
                # ourselves would demote the grid's only active node
                # and put it to sleep pointing at itself.
                return
            mine = self._my_rank()
            theirs = _rank(True, other.enat, other.id, self.gaf.enat_quantum_s)
            if theirs > mine:
                self.active_timer.cancel()
                self.demote_to_active()
                self._set_my_gateway(other)
                self._gaf_sleep()
            elif theirs[:2] == mine[:2] and (
                self.now - self._last_hello_sent
                < 0.25 * self.params.hello_period_s
            ):
                # id-only tie while the response rate limiter would
                # swallow our re-assert: beacon immediately.  Conflicts
                # are rare (two actives in one grid), so this cannot
                # storm the channel.
                self._send_hello()
            else:
                self._hello_response()
            return
        super()._resolve_gateway_conflict(other)

    # ------------------------------------------------------------------
    # No gateway guarantees in GAF
    # ------------------------------------------------------------------
    def _on_watch_expired(self) -> None:
        """GAF makes no gateway promise; endpoints especially must not
        self-elect.  Re-announce and keep listening."""
        if self.role is Role.ACTIVE and self.node.is_endpoint:
            self._hello_soon()
            return
        if self.role is Role.ACTIVE and not self.decision_timer.armed:
            # A non-endpoint stuck active with no active node around:
            # re-run discovery (we will likely claim the grid).
            self._gaf_decide()

    def on_cell_changed(self, old_cell: GridCoord, new_cell: GridCoord) -> None:
        if self.role in (Role.SLEEPING, Role.DEAD):
            return  # a sleeping GAF node sorts itself out at wakeup
        tr = self.node.tracer
        if tr.cell:
            tr.emit(
                "cell.enter", node=self.node.id, old=old_cell,
                new=new_cell, role=self.role.value,
            )
        self.my_cell = new_cell
        self.cell_peers.clear()
        self.gaf_peers.clear()
        if self.role is Role.GATEWAY:
            # No handoff protocol in GAF: just vacate the role.
            self.active_timer.cancel()
            self.demote_to_active()
        if self.node.is_endpoint:
            self.my_gateway = None
            self._hello_soon(0.05)
        else:
            self._enter_discovery()

    # ------------------------------------------------------------------
    # Routing relaxations (see module docstring)
    # ------------------------------------------------------------------
    def _on_rreq(self, msg: Rreq) -> None:
        if msg.dst == self.node.id and not self.is_gateway:
            key = (msg.src, msg.rreq_id)
            if key in self._seen_rreq:
                return
            self._remember_rreq(key)
            if msg.from_cell != self.my_cell:
                self.routing.update(
                    msg.src, msg.from_cell, msg.s_seq, self.now,
                    self.params.route_lifetime_s,
                )
            self.location_cache[msg.src] = msg.origin_cell
            self.seq += 1
            rep = Rrep(
                src=msg.src,
                dst=self.node.id,
                d_seq=self.seq,
                dest_cell=self.my_cell,
                from_cell=self.my_cell,
            )
            self.counters.inc("rrep_originated")
            self._send_rrep_toward(rep, msg.src)
            return
        super()._on_rreq(msg)

    def _forward(self, packet: DataPacket, dest: int, next_cell: GridCoord) -> None:
        if (
            self._gateway_of(next_cell) is None
            and self.location_cache.get(dest) == next_cell
            and self.node.grid.grid_distance(self.my_cell, next_cell) <= 1
        ):
            # Last hop to an adjacent grid with no active node: deliver
            # straight to the (always-awake endpoint) destination.
            env = DataEnvelope(packet=packet, from_cell=self.my_cell)
            self.counters.inc("gaf_direct_deliveries")
            self._unicast(
                env,
                dest,
                on_fail=lambda _m, _d: self._forward_failed(
                    packet, dest, next_cell, dest
                ),
            )
            return
        super()._forward(packet, dest, next_cell)

    def send_data(self, packet: DataPacket) -> None:
        if (
            self.role is Role.ACTIVE
            and (self.my_gateway is None or self.my_gateway == self.node.id)
            and not self.is_gateway
        ):
            gw = self._nearest_reachable_gateway()
            if gw is not None:
                env = DataEnvelope(packet=packet, from_cell=self.my_cell)
                self._unicast(
                    env,
                    gw,
                    on_fail=lambda _m, _d: self._queue_local(packet),
                )
                return
        super().send_data(packet)

    def _nearest_reachable_gateway(self) -> Optional[int]:
        """An in-range active node of an adjacent grid (a lone endpoint
        hands its traffic to whoever it can hear, as host-by-host AODV
        would)."""
        horizon = self.params.hello_period_s * self.params.hello_loss_tolerance
        best = None
        best_d = None
        for cell, (gw_id, heard) in self.neighbor_gateways.items():
            if self.now - heard > horizon:
                continue
            d = self.node.grid.grid_distance(self.my_cell, cell)
            if d <= 1 and (best_d is None or d < best_d):
                best, best_d = gw_id, d
        return best

    def on_death(self) -> None:
        self.decision_timer.cancel()
        self.active_timer.cancel()
        self.sleep_timer.cancel()
        super().on_death()
