"""AODV baseline — Ad hoc On-demand Distance Vector (Perkins & Royer),
the protocol GRID (and hence ECGRID) derives its discovery machinery
from (paper §3.3: "ECGRID is an extension of GRID (which is modified
from the AODV protocol)").

This is a host-by-host implementation, independent of the grid engine:

- HELLO beacons maintain a neighbor set with expiry;
- route discovery floods RREQs with an expanding-ring TTL search
  (TTL_START/TTL_INCREMENT/TTL_THRESHOLD, then network-wide);
- reverse routes form on the first RREQ copy; duplicates are dropped
  via an (origin, rreq_id) cache;
- the destination — or an intermediate with a fresh-enough route —
  answers with a unicast RREP along the reverse path;
- data moves hop-by-hop on next-hop entries with active-route-timeout
  refresh; MAC-level delivery failure triggers a RERR toward the
  source, which re-discovers.

Nobody sleeps: AODV has no energy management, which is exactly why the
grid family exists.  Including it lets the benchmarks reproduce the
GRID paper's motivation (grid routing needs far less flooding state
per host) alongside this paper's energy story.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import ClassVar, Deque, Dict, Optional, Set, Tuple

from repro.des.timer import PeriodicTimer, Timer
from repro.metrics.collectors import Counters
from repro.net.packet import BROADCAST, DataPacket, Message
from repro.protocols.base import ProtocolParams, RoutingProtocol


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass
class AodvHello(Message):
    size_bytes: ClassVar[int] = 12

    id: int = 0
    seq: int = 0


@dataclass
class AodvRreq(Message):
    size_bytes: ClassVar[int] = 24

    origin: int = 0
    origin_seq: int = 0
    rreq_id: int = 0
    dst: int = 0
    dst_seq: int = 0
    hop_count: int = 0
    ttl: int = 255

    def describe(self) -> str:
        return f"A-RREQ({self.origin}->{self.dst} #{self.rreq_id})"


@dataclass
class AodvRrep(Message):
    size_bytes: ClassVar[int] = 20

    origin: int = 0
    dst: int = 0
    dst_seq: int = 0
    hop_count: int = 0

    def describe(self) -> str:
        return f"A-RREP({self.dst}~>{self.origin})"


@dataclass
class AodvRerr(Message):
    size_bytes: ClassVar[int] = 12

    unreachable: int = 0
    unreachable_seq: int = 0


@dataclass
class AodvData(Message):
    """A data packet in hop-by-hop transit."""

    size_bytes: ClassVar[int] = 4

    packet: Optional[DataPacket] = None

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        payload = self.packet.size_bytes if self.packet is not None else 0
        return self.size_bytes + payload + LINK_OVERHEAD_BYTES


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class AodvParams:
    """AODV constants (RFC 3561 names, scaled-down defaults)."""

    hello_interval_s: float = 1.0
    allowed_hello_loss: float = 3.0
    active_route_timeout_s: float = 10.0
    ttl_start: int = 2
    ttl_increment: int = 2
    ttl_threshold: int = 7
    net_diameter: int = 35
    rreq_retries: int = 2
    ring_traversal_base_s: float = 0.25
    buffer_limit: int = 64


@dataclass
class _Route:
    next_hop: int
    hop_count: int
    dst_seq: int
    expires_at: float


class _Discovery:
    __slots__ = ("dst", "ttl", "retries", "timer", "queue")

    def __init__(self, dst: int, ttl: int, timer: Timer) -> None:
        self.dst = dst
        self.ttl = ttl
        self.retries = 0
        self.timer = timer
        self.queue: Deque[DataPacket] = deque()


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class AodvProtocol(RoutingProtocol):
    """One AODV host."""

    name = "aodv"

    def __init__(
        self,
        node,
        params: ProtocolParams,
        counters: Optional[Counters] = None,
        aodv: Optional[AodvParams] = None,
    ) -> None:
        super().__init__(node, params)
        self.counters = counters if counters is not None else Counters()
        self.aodv = aodv or AodvParams()
        self.rng = node.sim.rng.stream(f"aodv-{node.id}")
        self.seq = 0
        self.rreq_id = 0
        self.routes: Dict[int, _Route] = {}
        self.neighbors: Dict[int, float] = {}   # id -> last heard
        self.discoveries: Dict[int, _Discovery] = {}
        self._seen_rreq: Set[Tuple[int, int]] = set()
        self._seen_order: Deque[Tuple[int, int]] = deque()
        self.hello_timer = PeriodicTimer(
            node.sim,
            self._send_hello,
            self.aodv.hello_interval_s,
            jitter=lambda: self.rng.uniform(-0.1, 0.1),
        )

    # -- plumbing --------------------------------------------------------
    @property
    def now(self) -> float:
        return self.node.sim.now

    def start(self) -> None:
        self.hello_timer.start(
            initial_delay=self.rng.uniform(0.0, self.aodv.hello_interval_s)
        )

    def on_death(self) -> None:
        self.hello_timer.stop()
        for d in self.discoveries.values():
            d.timer.cancel()
            while d.queue:
                self.node.report_drop(d.queue.popleft(), "node_died")
        self.discoveries.clear()

    def _send_hello(self) -> None:
        self.counters.inc("aodv_hello_sent")
        self.node.mac.send(AodvHello(id=self.node.id, seq=self.seq), BROADCAST)

    def _neighbor_alive(self, nid: int) -> bool:
        heard = self.neighbors.get(nid)
        if heard is None:
            return False
        horizon = self.aodv.hello_interval_s * self.aodv.allowed_hello_loss
        return self.now - heard <= horizon

    # -- routing table -----------------------------------------------------
    def _route(self, dst: int) -> Optional[_Route]:
        r = self.routes.get(dst)
        if r is None or r.expires_at < self.now:
            return None
        return r

    def _install(self, dst: int, next_hop: int, hops: int, seq: int) -> None:
        existing = self.routes.get(dst)
        if (
            existing is not None
            and existing.expires_at >= self.now
            and existing.dst_seq > seq
        ):
            return
        if (
            existing is not None
            and existing.expires_at >= self.now
            and existing.dst_seq == seq
            and existing.hop_count < hops
        ):
            return
        self.routes[dst] = _Route(
            next_hop, hops, seq, self.now + self.aodv.active_route_timeout_s
        )

    def _refresh(self, dst: int) -> None:
        r = self.routes.get(dst)
        if r is not None:
            r.expires_at = max(
                r.expires_at, self.now + self.aodv.active_route_timeout_s
            )

    # -- application entry ---------------------------------------------------
    def send_data(self, packet: DataPacket) -> None:
        self._forward_or_discover(packet)

    def _forward_or_discover(self, packet: DataPacket) -> None:
        dst = packet.dst
        if dst == self.node.id:
            self.node.deliver_to_app(packet)
            return
        route = self._route(dst)
        if route is not None:
            self._transmit(packet, route)
            return
        self._discover(dst, packet)

    def _transmit(self, packet: DataPacket, route: _Route) -> None:
        self._refresh(packet.dst)
        self._refresh(route.next_hop)
        self.counters.inc("aodv_data_forwarded")
        self.node.mac.send(
            AodvData(packet=packet),
            route.next_hop,
            on_fail=lambda _m, _d: self._link_broken(route.next_hop, packet),
        )

    # -- discovery -------------------------------------------------------------
    def _discover(self, dst: int, packet: Optional[DataPacket]) -> None:
        d = self.discoveries.get(dst)
        if d is None:
            d = _Discovery(
                dst,
                self.aodv.ttl_start,
                Timer(self.node.sim, lambda dd=dst: self._rreq_timeout(dd)),
            )
            self.discoveries[dst] = d
            self._send_rreq(d)
        if packet is not None:
            if len(d.queue) >= self.aodv.buffer_limit:
                self.counters.inc("buffer_drops")
                self.node.report_drop(d.queue.popleft(), "buffer_overflow")
            d.queue.append(packet)

    def _send_rreq(self, d: _Discovery) -> None:
        self.seq += 1
        self.rreq_id += 1
        known = self.routes.get(d.dst)
        msg = AodvRreq(
            origin=self.node.id,
            origin_seq=self.seq,
            rreq_id=self.rreq_id,
            dst=d.dst,
            dst_seq=known.dst_seq if known is not None else 0,
            hop_count=0,
            ttl=d.ttl,
        )
        self._remember((self.node.id, self.rreq_id))
        self.counters.inc("aodv_rreq_originated")
        self.node.mac.send(msg, BROADCAST)
        # Ring traversal time grows with the ring.
        d.timer.start(self.aodv.ring_traversal_base_s * max(1, d.ttl))

    def _rreq_timeout(self, dst: int) -> None:
        d = self.discoveries.get(dst)
        if d is None:
            return
        if d.ttl < self.aodv.ttl_threshold:
            # Expanding ring: widen and retry (not counted as a retry).
            d.ttl = min(d.ttl + self.aodv.ttl_increment, self.aodv.net_diameter)
            self._send_rreq(d)
            return
        d.retries += 1
        if d.retries > self.aodv.rreq_retries:
            self.counters.inc("aodv_discovery_failures")
            self.counters.inc("data_dropped_no_route", len(d.queue))
            while d.queue:
                self.node.report_drop(d.queue.popleft(), "no_route")
            del self.discoveries[dst]
            return
        d.ttl = self.aodv.net_diameter
        self._send_rreq(d)

    def _remember(self, key: Tuple[int, int]) -> None:
        self._seen_rreq.add(key)
        self._seen_order.append(key)
        if len(self._seen_order) > 8192:
            self._seen_rreq.discard(self._seen_order.popleft())

    def _route_ready(self, dst: int) -> None:
        d = self.discoveries.pop(dst, None)
        if d is None:
            return
        d.timer.cancel()
        while d.queue:
            self._forward_or_discover(d.queue.popleft())

    # -- message handling ---------------------------------------------------------
    def on_message(self, message, sender_id: int) -> None:
        if not self.node.alive:
            return
        self.neighbors[sender_id] = self.now
        if isinstance(message, AodvHello):
            return  # neighbor bookkeeping above is the whole job
        if isinstance(message, AodvRreq):
            self._on_rreq(message, sender_id)
        elif isinstance(message, AodvRrep):
            self._on_rrep(message, sender_id)
        elif isinstance(message, AodvRerr):
            self._on_rerr(message, sender_id)
        elif isinstance(message, AodvData):
            self._on_data(message, sender_id)

    def _on_rreq(self, msg: AodvRreq, sender_id: int) -> None:
        key = (msg.origin, msg.rreq_id)
        if key in self._seen_rreq:
            return
        self._remember(key)
        # Reverse route to the origin via the sender.
        self._install(msg.origin, sender_id, msg.hop_count + 1, msg.origin_seq)
        if msg.origin == self.node.id:
            return
        if msg.dst == self.node.id:
            self.seq = max(self.seq + 1, msg.dst_seq)
            self._send_rrep(
                AodvRrep(origin=msg.origin, dst=self.node.id,
                         dst_seq=self.seq, hop_count=0),
                msg.origin,
            )
            self.counters.inc("aodv_rrep_originated")
            return
        route = self._route(msg.dst)
        if route is not None and route.dst_seq >= msg.dst_seq > 0:
            # Fresh-enough intermediate route: answer on its behalf.
            self._send_rrep(
                AodvRrep(origin=msg.origin, dst=msg.dst,
                         dst_seq=route.dst_seq,
                         hop_count=route.hop_count),
                msg.origin,
            )
            self.counters.inc("aodv_rrep_intermediate")
            return
        if msg.ttl <= 1:
            return
        self.counters.inc("aodv_rreq_forwarded")
        fwd = AodvRreq(
            origin=msg.origin,
            origin_seq=msg.origin_seq,
            rreq_id=msg.rreq_id,
            dst=msg.dst,
            dst_seq=msg.dst_seq,
            hop_count=msg.hop_count + 1,
            ttl=msg.ttl - 1,
        )
        self.node.mac.send(fwd, BROADCAST)

    def _send_rrep(self, rep: AodvRrep, toward: int) -> None:
        if toward == self.node.id:
            return
        route = self._route(toward)
        if route is None:
            self.counters.inc("aodv_rrep_lost")
            return
        self.node.mac.send(
            rep,
            route.next_hop,
            on_fail=lambda _m, _d: self.counters.inc("aodv_rrep_lost"),
        )

    def _on_rrep(self, rep: AodvRrep, sender_id: int) -> None:
        self._install(rep.dst, sender_id, rep.hop_count + 1, rep.dst_seq)
        if rep.origin == self.node.id:
            self._route_ready(rep.dst)
            return
        self._send_rrep(
            AodvRrep(origin=rep.origin, dst=rep.dst, dst_seq=rep.dst_seq,
                     hop_count=rep.hop_count + 1),
            rep.origin,
        )

    def _on_rerr(self, msg: AodvRerr, sender_id: int) -> None:
        route = self.routes.get(msg.unreachable)
        if route is not None and route.next_hop == sender_id:
            del self.routes[msg.unreachable]
            # Propagate to whoever might route through us.
            self.counters.inc("aodv_rerr_forwarded")
            self.node.mac.send(
                AodvRerr(unreachable=msg.unreachable,
                         unreachable_seq=msg.unreachable_seq),
                BROADCAST,
            )

    def _on_data(self, env: AodvData, sender_id: int) -> None:
        packet = env.packet
        if packet is None:
            return
        packet.hops += 1
        if packet.dst == self.node.id:
            self.node.deliver_to_app(packet)
            return
        self._forward_or_discover(packet)

    # -- failure handling ----------------------------------------------------------
    def _link_broken(self, next_hop: int, packet: DataPacket) -> None:
        if not self.node.alive:
            # The failure callback outlived us (queue-overflow call_soon
            # racing battery death); nothing will salvage the packet.
            self.node.report_drop(packet, "node_died")
            return
        self.counters.inc("aodv_link_breaks")
        self.neighbors.pop(next_hop, None)
        broken = [d for d, r in self.routes.items() if r.next_hop == next_hop]
        for dst in broken:
            del self.routes[dst]
            self.node.mac.send(
                AodvRerr(unreachable=dst, unreachable_seq=0), BROADCAST
            )
        # Salvage: re-discover for this packet.
        self._discover(packet.dst, packet)
