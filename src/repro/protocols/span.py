"""Span-style baseline — coordinator backbone with periodic wakeups.

The paper compares ECGRID against Span (Chen et al., MobiCom'01)
qualitatively in §1: Span coordinators stay awake to route;
non-coordinators sleep but must *wake periodically* (ATIM-style) to
check for traffic, and — the paper's key observation — Span's savings
do not grow with host density, because every non-coordinator pays the
same periodic-wakeup duty cycle no matter how many neighbors share its
area.  The paper does not simulate Span; this implementation exists to
let the benchmarks demonstrate that qualitative claim quantitatively.

The model keeps Span's externally visible behaviour:

- loosely synchronized *beacon windows*: every ``beacon_period_s``
  all alive nodes wake for ``window_s``, exchange status beacons, and
  non-coordinators go back to sleep;
- the **coordinator eligibility rule**: announce (after a randomized
  energy-weighted backoff) if two of your neighbors cannot reach each
  other directly or through an existing coordinator;
- coordinator *withdrawal* after a tenure so the role rotates;
- routing rides the host-by-host AODV engine over awake nodes; data
  for a sleeping destination waits at its last hop until the next
  window (the ATIM substitute).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import ClassVar, Deque, Dict, Optional, Set, Tuple

from repro.des.timer import Timer
from repro.metrics.collectors import Counters
from repro.net.packet import BROADCAST, DataPacket, Message
from repro.protocols.aodv import AodvData, AodvParams, AodvProtocol, _Route
from repro.protocols.base import ProtocolParams


@dataclass
class SpanBeacon(Message):
    """Window beacon: status + one-hop neighbor/coordinator digest."""

    size_bytes: ClassVar[int] = 28

    id: int = 0
    coordinator: bool = False
    neighbors: Tuple[int, ...] = ()
    coordinators: Tuple[int, ...] = ()
    energy_frac: float = 1.0


@dataclass
class SpanParams:
    """Span duty-cycle and election constants."""

    beacon_period_s: float = 2.0
    window_s: float = 0.4
    #: Maximum randomized announcement backoff inside a window.
    announce_backoff_s: float = 0.2
    #: Coordinator tenure before volunteering to withdraw.
    tenure_s: float = 30.0
    #: Neighbor digest freshness (in beacon periods).
    neighbor_loss: float = 3.0


class SpanProtocol(AodvProtocol):
    """One Span host (AODV routing over a coordinator backbone)."""

    name = "span"

    def __init__(
        self,
        node,
        params: ProtocolParams,
        counters: Optional[Counters] = None,
        aodv: Optional[AodvParams] = None,
        span: Optional[SpanParams] = None,
    ) -> None:
        super().__init__(node, params, counters, aodv)
        self.span = span or SpanParams()
        self.coordinator = False
        self.coordinator_since = 0.0
        #: id -> (is_coordinator, neighbor digest, coord digest, heard)
        self.peer_info: Dict[int, Tuple[bool, Set[int], Set[int], float]] = {}
        self.window_timer = Timer(node.sim, self._window_open)
        self.window_close_timer = Timer(node.sim, self._window_close)
        self.announce_timer = Timer(node.sim, self._announce_check)
        #: Final-hop packets waiting for a sleeping destination.
        self._deferred: Deque[DataPacket] = deque()

    # ------------------------------------------------------------------
    # Duty cycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        # Windows are loosely synchronized on the global clock.
        first = self.span.beacon_period_s - (
            self.now % self.span.beacon_period_s
        )
        self.window_timer.start(first)

    def on_death(self) -> None:
        self.window_timer.cancel()
        self.window_close_timer.cancel()
        self.announce_timer.cancel()
        while self._deferred:
            self.node.report_drop(self._deferred.popleft(), "node_died")
        super().on_death()

    def _window_open(self) -> None:
        if not self.node.alive:
            return
        self.node.wake_up()
        self.counters.inc("span_windows")
        # Stagger beacons across the window: synchronized wakeups would
        # otherwise make hidden terminals collide every single period.
        self.node.sim.after(
            self.rng.uniform(0.0, 0.4 * self.span.window_s),
            self._beacon_if_awake,
        )
        # Randomized eligibility check late in the window (after the
        # beacons landed, before the window closes).
        self.announce_timer.start(
            self.rng.uniform(0.5 * self.span.window_s, 0.9 * self.span.window_s)
        )
        self.window_close_timer.start(self.span.window_s)
        self.window_timer.start(self.span.beacon_period_s)
        self._flush_deferred()

    def _window_close(self) -> None:
        if not self.node.alive or self.coordinator:
            return
        if self.node.mac.queue_length > 0 or self.discoveries:
            # Traffic in flight: stay up; re-check at next window.
            return
        self.counters.inc("span_sleeps")
        self.node.go_to_sleep()

    def _beacon_if_awake(self) -> None:
        if self.node.alive and self.node.awake:
            self._send_beacon()

    def _send_beacon(self) -> None:
        horizon = self.span.beacon_period_s * self.span.neighbor_loss
        fresh = [
            nid for nid, t in self.neighbors.items()
            if self.now - t <= horizon
        ]
        coords = [
            nid for nid in fresh
            if self.peer_info.get(nid, (False,))[0]
        ]
        frac = 1.0 if self.node.battery.infinite else self.node.rbrc()
        self.counters.inc("span_beacons")
        self.node.mac.send(
            SpanBeacon(
                id=self.node.id,
                coordinator=self.coordinator,
                neighbors=tuple(fresh[:32]),
                coordinators=tuple(coords[:16]),
                energy_frac=frac,
            ),
            BROADCAST,
        )

    # ------------------------------------------------------------------
    # Coordinator election (the eligibility rule)
    # ------------------------------------------------------------------
    def _fresh_peers(self) -> Dict[int, Tuple[bool, Set[int], Set[int]]]:
        horizon = self.span.beacon_period_s * self.span.neighbor_loss
        return {
            nid: (coord, nbrs, coords)
            for nid, (coord, nbrs, coords, t) in self.peer_info.items()
            if self.now - t <= horizon
        }

    def _eligible(self) -> bool:
        """True if two neighbors cannot reach each other directly nor
        through a coordinator both can hear."""
        peers = self._fresh_peers()
        ids = list(peers)
        for i, a in enumerate(ids):
            a_coord, a_nbrs, a_coords = peers[a]
            for b in ids[i + 1:]:
                b_coord, b_nbrs, b_coords = peers[b]
                if b in a_nbrs or a in b_nbrs:
                    continue  # direct link
                shared = (a_coords | ({a} if a_coord else set())) & (
                    b_coords | ({b} if b_coord else set())
                )
                # Any coordinator adjacent to both bridges them.
                bridged = shared or any(
                    peers[c][0] and a in peers[c][1] and b in peers[c][1]
                    for c in ids
                )
                if not bridged:
                    return True
        return False

    def _announce_check(self) -> None:
        if not self.node.alive or not self.node.awake:
            return
        if self.coordinator:
            # Withdraw after tenure when the backbone survives without us.
            if (
                self.now - self.coordinator_since > self.span.tenure_s
                and not self._eligible()
            ):
                self.coordinator = False
                self.counters.inc("span_withdrawals")
                self._send_beacon()
            return
        if self._eligible():
            self.coordinator = True
            self.coordinator_since = self.now
            self.counters.inc("span_coordinator_terms")
            self._send_beacon()

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, message, sender_id: int) -> None:
        if isinstance(message, SpanBeacon):
            self.neighbors[sender_id] = self.now
            self.peer_info[message.id] = (
                message.coordinator,
                set(message.neighbors),
                set(message.coordinators),
                self.now,
            )
            return
        super().on_message(message, sender_id)

    # ------------------------------------------------------------------
    # Coordinators answer discovery for their sleeping neighbors: the
    # route then terminates at the coordinator, whose final hop defers
    # to the destination's next window (see _transmit/_defer).
    # ------------------------------------------------------------------
    def _on_rreq(self, msg, sender_id: int) -> None:
        if (
            self.coordinator
            and msg.dst != self.node.id
            and msg.origin != self.node.id
            and self._route(msg.dst) is None
            and self._neighbor_alive(msg.dst)
        ):
            key = (msg.origin, msg.rreq_id)
            if key in self._seen_rreq:
                return
            self._remember(key)
            self._install(msg.origin, sender_id, msg.hop_count + 1,
                          msg.origin_seq)
            # One-hop "route" to the sleeping neighbor through us.
            self._install(msg.dst, msg.dst, 1, 0)
            self.seq += 1
            from repro.protocols.aodv import AodvRrep

            self.counters.inc("span_proxy_rreps")
            self._send_rrep(
                AodvRrep(origin=msg.origin, dst=msg.dst,
                         dst_seq=self.seq, hop_count=1),
                msg.origin,
            )
            return
        super()._on_rreq(msg, sender_id)

    # ------------------------------------------------------------------
    # Data path: defer final hop to a sleeping destination
    # ------------------------------------------------------------------
    def send_data(self, packet: DataPacket) -> None:
        # A sleeping source wakes itself to transmit.
        if self.node.alive and not self.node.awake:
            self.node.wake_up()
        super().send_data(packet)

    def _transmit(self, packet: DataPacket, route: _Route) -> None:
        if route.next_hop == packet.dst:
            # Final hop: the destination may be asleep until its next
            # window; losing the MAC retries would drop the packet.
            self._refresh(packet.dst)
            self.counters.inc("aodv_data_forwarded")
            self.node.mac.send(
                AodvData(packet=packet),
                route.next_hop,
                on_fail=lambda _m, _d: self._defer(packet),
            )
            return
        super()._transmit(packet, route)

    def _defer(self, packet: DataPacket) -> None:
        if not self.node.alive:
            self.node.report_drop(packet, "node_died")
            return
        self.counters.inc("span_deferred")
        if len(self._deferred) >= self.aodv.buffer_limit:
            self.counters.inc("buffer_drops")
            self.node.report_drop(self._deferred.popleft(), "buffer_overflow")
        self._deferred.append(packet)

    def _flush_deferred(self) -> None:
        # Give destinations a beat to open their window, then push.
        if self._deferred:
            self.node.sim.after(0.1, self._push_deferred)

    def _push_deferred(self) -> None:
        while self._deferred:
            self._forward_or_discover(self._deferred.popleft())
