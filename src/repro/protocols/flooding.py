"""Naive flooding: the delivery upper-bound / energy lower-bound
baseline used by the test suite.

Every data packet is rebroadcast once by every host that hears it (the
textbook broadcast-storm protocol of reference [13]).  No state, no
elections, no sleep — if flooding cannot deliver a packet in a given
topology, no single-channel protocol can, which makes it the oracle the
integration tests compare routed delivery against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Set

from repro.metrics.collectors import Counters
from repro.net.packet import BROADCAST, DataPacket, Message
from repro.protocols.base import ProtocolParams, RoutingProtocol


@dataclass
class FloodEnvelope(Message):
    """A flooded data packet with a hop budget."""

    size_bytes: ClassVar[int] = 8

    packet: Optional[DataPacket] = None
    ttl: int = 16

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        payload = self.packet.size_bytes if self.packet is not None else 0
        return self.size_bytes + payload + LINK_OVERHEAD_BYTES


class FloodingProtocol(RoutingProtocol):
    """Blind flooding with duplicate suppression."""

    name = "flooding"

    def __init__(self, node, params: ProtocolParams, counters: Optional[Counters] = None):
        super().__init__(node, params)
        self.counters = counters if counters is not None else Counters()
        self.rng = node.sim.rng.stream(f"flood-{node.id}")
        self._seen: Set[int] = set()

    def send_data(self, packet: DataPacket) -> None:
        self._seen.add(packet.uid)
        self.counters.inc("flood_originated")
        self.node.mac.send(FloodEnvelope(packet=packet), BROADCAST)

    def on_message(self, message, sender_id: int) -> None:
        if not isinstance(message, FloodEnvelope) or message.packet is None:
            return
        packet = message.packet
        if packet.uid in self._seen:
            return
        self._seen.add(packet.uid)
        packet.hops += 1
        if packet.dst == self.node.id:
            self.node.deliver_to_app(packet)
            return
        if message.ttl <= 1:
            self.counters.inc("flood_ttl_drops")
            # One copy of the flood died here; a sibling copy that gets
            # through later outranks this (PacketLog first-drop/
            # delivery-wins rules keep the accounting consistent).
            self.node.report_drop(packet, "ttl_exhausted")
            return
        self.counters.inc("flood_rebroadcasts")
        # Tiny random delay decorrelates the rebroadcast storm.
        self.node.sim.after(
            self.rng.uniform(0.0, 0.01),
            self._rebroadcast,
            FloodEnvelope(packet=packet, ttl=message.ttl - 1),
        )

    def _rebroadcast(self, env: FloodEnvelope) -> None:
        if self.node.alive:
            self.node.mac.send(env, BROADCAST)
