"""The interface between a node and its routing protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.energy.profile import EnergyLevel
from repro.geo.grid import GridCoord
from repro.net.packet import DataPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass
class ProtocolParams:
    """Tunables shared across the grid-protocol family.

    Defaults follow the paper where it gives numbers and common
    AODV/GRID/GAF practice where it does not.
    """

    #: Interval between HELLO beacons of active hosts (the "HELLO
    #: period" also used as the election listening window).
    hello_period_s: float = 2.0
    #: Uniform jitter added to each beacon to desynchronize neighbors.
    hello_jitter_s: float = 0.2
    #: Beacons missed before an active host declares a no-gateway event.
    hello_loss_tolerance: float = 3.5
    #: Pause between a gateway's wake-everyone broadcast sequence and its
    #: RETIRE message (the paper's tau) — time for RAS wakeups to settle.
    retire_wait_s: float = 0.05
    #: Route discovery retry/timeout.  The timeout must cover a full
    #: global flood round including MAC queueing under churn; the last
    #: retries search the whole map (§3.3 "another round ... to search
    #: all areas").
    route_request_timeout_s: float = 0.8
    route_request_retries: int = 3
    #: RREQ confinement policy (§3.3 / GRID paper): "bbox" floods only
    #: the S-D bounding rectangle, "bbox_margin" adds a ring of
    #: ``search_margin_cells``, "global" never confines.
    search_policy: str = "bbox_margin"
    #: Extra ring of grids around the S-D bounding box searched by RREQ.
    search_margin_cells: int = 1
    #: Packets buffered per pending route discovery / sleeping neighbor.
    buffer_limit: int = 64
    #: How long a woken / idle non-gateway host stays awake with no
    #: traffic before sleeping again.
    idle_before_sleep_s: float = 1.0
    #: Dwell-timer clamp (see repro.mobility.dwell).
    min_dwell_s: float = 1.0
    max_dwell_s: float = 60.0
    #: How a sleeping host estimates its grid dwell (§3.2): "exact"
    #: reads the host's own itinerary (its navigation knows when it
    #: will leave the grid); "heuristic" is the paper's literal
    #: position+velocity extrapolation, which over-sleeps badly when
    #: the estimate is taken during a pause and the host then moves.
    dwell_mode: str = "exact"
    #: Routing-table entry lifetime without use.
    route_lifetime_s: float = 30.0
    #: How long a woken sender waits for the gateway's reply to ACQ
    #: before declaring a no-gateway event (§3.3 handshake).
    acq_timeout_s: float = 0.25
    #: ECGRID load-balance handoff on battery band change (§3.2).
    load_balance: bool = True
    #: Gateway-election ranking (see :mod:`repro.core.election`):
    #: "paper" (rules 1-3), "grid" (non-energy-aware), "dwell", "load",
    #: or "random".  Part of the experiment config, so it keys the
    #: result cache and the serve-path work identity.
    election_policy: str = "paper"


class RoutingProtocol:
    """Base class: every callback a :class:`~repro.net.node.Node` invokes.

    Protocols are strictly event-driven; every method is a reaction to a
    simulator event (a received message, a timer, a mobility or battery
    transition).
    """

    name = "base"

    def __init__(self, node: "Node", params: ProtocolParams) -> None:
        self.node = node
        self.params = params

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Called once at simulation start (node is awake and idle)."""

    def on_death(self) -> None:
        """Battery exhausted; radio is already off."""

    # -- traffic --------------------------------------------------------
    def send_data(self, packet: DataPacket) -> None:
        """Application hands down a packet addressed to ``packet.dst``."""
        raise NotImplementedError

    # -- inputs ---------------------------------------------------------
    def on_message(self, message: Any, sender_id: int) -> None:
        """A frame addressed to us (or broadcast) arrived from the MAC."""

    def on_cell_changed(self, old_cell: GridCoord, new_cell: GridCoord) -> None:
        """The node's grid coordinate changed (exact crossing event)."""

    def on_paged(self, broadcast: bool) -> None:
        """Our RAS fired (host page, or grid broadcast sequence)."""

    def on_battery_level_change(
        self, old: EnergyLevel, new: EnergyLevel
    ) -> None:
        """Rbrc crossed a band threshold."""
