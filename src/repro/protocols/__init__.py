"""Routing protocols: the common interface and the baseline protocols.

The paper's contribution (ECGRID) lives in :mod:`repro.core`; this
package holds the interface every protocol implements plus the
comparison baselines (GRID, GAF, flooding).
"""

from repro.protocols.base import ProtocolParams, RoutingProtocol

__all__ = ["RoutingProtocol", "ProtocolParams"]
