"""DSDV baseline — Destination-Sequenced Distance Vector (Perkins &
Bhagwat, SIGCOMM'94), the paper's reference [4].

The *proactive* counterpoint to the on-demand family: every host
maintains a route to every other host at all times, advertising its
table periodically (full dumps) and immediately on changes (triggered
updates).  Loop freedom comes from destination-originated sequence
numbers: a route is replaced only by a higher sequence number, or by an
equal one with a better metric; broken links are advertised with an
odd sequence number and infinite metric.

No energy management (all hosts idle like GRID).  Included because the
overhead comparison needs the classic proactive data point: DSDV's
advertisement traffic scales with n * table size regardless of demand,
which is exactly why on-demand and grid-confined protocols exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.des.timer import PeriodicTimer
from repro.metrics.collectors import Counters
from repro.net.packet import BROADCAST, DataPacket, Message
from repro.protocols.aodv import AodvData
from repro.protocols.base import ProtocolParams, RoutingProtocol

#: Metric value meaning "unreachable".
INFINITY = 255


@dataclass
class DsdvAdvert(Message):
    """A route advertisement: (dest, metric, seq) triples."""

    size_bytes: ClassVar[int] = 8

    origin: int = 0
    entries: Tuple[Tuple[int, int, int], ...] = ()
    full_dump: bool = True

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        return self.size_bytes + 8 * len(self.entries) + LINK_OVERHEAD_BYTES


@dataclass
class DsdvParams:
    advert_interval_s: float = 5.0
    #: Triggered updates are batched for this long (damping).
    trigger_delay_s: float = 0.3
    #: Routes older than this many missed adverts via a neighbor break.
    neighbor_loss: float = 3.0
    buffer_limit: int = 64


@dataclass
class _Entry:
    next_hop: int
    metric: int
    seq: int
    heard_at: float


class DsdvProtocol(RoutingProtocol):
    """One DSDV host."""

    name = "dsdv"

    def __init__(
        self,
        node,
        params: ProtocolParams,
        counters: Optional[Counters] = None,
        dsdv: Optional[DsdvParams] = None,
    ) -> None:
        super().__init__(node, params)
        self.counters = counters if counters is not None else Counters()
        self.dsdv = dsdv or DsdvParams()
        self.rng = node.sim.rng.stream(f"dsdv-{node.id}")
        self.seq = 0          # own destination sequence (even when valid)
        self.table: Dict[int, _Entry] = {}
        self._trigger_pending = False
        self._undeliverable: Dict[int, List[DataPacket]] = {}
        self.advert_timer = PeriodicTimer(
            node.sim,
            self._advertise_full,
            self.dsdv.advert_interval_s,
            jitter=lambda: self.rng.uniform(-0.5, 0.5),
        )

    @property
    def now(self) -> float:
        return self.node.sim.now

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.advert_timer.start(
            initial_delay=self.rng.uniform(0.1, self.dsdv.advert_interval_s)
        )

    def on_death(self) -> None:
        self.advert_timer.stop()
        for buf in self._undeliverable.values():
            for packet in buf:
                self.node.report_drop(packet, "node_died")
        self._undeliverable.clear()

    # ------------------------------------------------------------------
    # Advertising
    # ------------------------------------------------------------------
    def _my_entry(self) -> Tuple[int, int, int]:
        self.seq += 2  # destinations bump by 2: even = reachable
        return (self.node.id, 0, self.seq)

    def _advertise_full(self) -> None:
        entries = [self._my_entry()]
        for dest, e in self.table.items():
            entries.append((dest, e.metric, e.seq))
        self.counters.inc("dsdv_full_dumps")
        self.node.mac.send(
            DsdvAdvert(origin=self.node.id, entries=tuple(entries)),
            BROADCAST,
        )

    def _schedule_trigger(self) -> None:
        if self._trigger_pending:
            return
        self._trigger_pending = True
        self.node.sim.after(self.dsdv.trigger_delay_s, self._advertise_trigger)

    def _advertise_trigger(self) -> None:
        self._trigger_pending = False
        if not self.node.alive:
            return
        # Simplified incremental update: re-advertise everything that is
        # currently broken plus ourselves.
        entries = [self._my_entry()]
        for dest, e in self.table.items():
            if e.metric >= INFINITY:
                entries.append((dest, INFINITY, e.seq))
        self.counters.inc("dsdv_triggered_updates")
        self.node.mac.send(
            DsdvAdvert(origin=self.node.id, entries=tuple(entries),
                       full_dump=False),
            BROADCAST,
        )

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------
    def _consider(self, dest: int, metric: int, seq: int, via: int) -> bool:
        if dest == self.node.id:
            return False
        new_metric = metric + 1 if metric < INFINITY else INFINITY
        cur = self.table.get(dest)
        accept = False
        if cur is None:
            accept = new_metric < INFINITY
        elif seq > cur.seq:
            accept = True
        elif seq == cur.seq and new_metric < cur.metric:
            accept = True
        if accept:
            self.table[dest] = _Entry(via, new_metric, seq, self.now)
            if new_metric >= INFINITY:
                self._schedule_trigger()
            else:
                self._flush_undeliverable(dest)
        elif cur is not None and cur.next_hop == via:
            cur.heard_at = self.now
        return accept

    def _on_advert(self, ad: DsdvAdvert, sender_id: int) -> None:
        for dest, metric, seq in ad.entries:
            self._consider(dest, metric, seq, sender_id)

    def _route(self, dest: int) -> Optional[_Entry]:
        e = self.table.get(dest)
        if e is None or e.metric >= INFINITY:
            return None
        horizon = self.dsdv.advert_interval_s * self.dsdv.neighbor_loss
        if self.now - e.heard_at > horizon:
            return None
        return e

    def _break_via(self, neighbor: int) -> None:
        """MAC failure toward a neighbor: poison everything through it
        (odd sequence = originated by the detector)."""
        broken = False
        for dest, e in self.table.items():
            if e.next_hop == neighbor and e.metric < INFINITY:
                e.metric = INFINITY
                e.seq += 1  # odd: marks the break
                broken = True
        if broken:
            self.counters.inc("dsdv_link_breaks")
            self._schedule_trigger()

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def send_data(self, packet: DataPacket) -> None:
        self._forward(packet)

    def _forward(self, packet: DataPacket) -> None:
        if packet.dst == self.node.id:
            self.node.deliver_to_app(packet)
            return
        entry = self._route(packet.dst)
        if entry is None:
            # Proactive protocol: no discovery to fall back on.  Hold
            # briefly in case an advert is about to arrive.
            buf = self._undeliverable.setdefault(packet.dst, [])
            if len(buf) >= self.dsdv.buffer_limit:
                self.counters.inc("buffer_drops")
                self.node.report_drop(buf.pop(0), "buffer_overflow")
            buf.append(packet)
            self.counters.inc("dsdv_no_route")
            return
        self.counters.inc("dsdv_data_forwarded")
        self.node.mac.send(
            AodvData(packet=packet),
            entry.next_hop,
            on_fail=lambda _m, _d, nh=entry.next_hop: self._send_failed(
                packet, nh
            ),
        )

    def _send_failed(self, packet: DataPacket, next_hop: int) -> None:
        if not self.node.alive:
            self.node.report_drop(packet, "node_died")
            return
        self._break_via(next_hop)
        # One salvage attempt once the table heals.
        buf = self._undeliverable.setdefault(packet.dst, [])
        if len(buf) < self.dsdv.buffer_limit:
            buf.append(packet)
        else:
            self.node.report_drop(packet, "buffer_overflow")

    def _flush_undeliverable(self, dest: int) -> None:
        buf = self._undeliverable.pop(dest, None)
        if buf:
            for packet in buf:
                self._forward(packet)

    def on_message(self, message, sender_id: int) -> None:
        if not self.node.alive:
            return
        if isinstance(message, DsdvAdvert):
            self._on_advert(message, sender_id)
        elif isinstance(message, AodvData):
            packet = message.packet
            if packet is not None:
                packet.hops += 1
                self._forward(packet)
