"""GRID baseline (Liao, Tseng, Sheu 2001) — no energy conservation.

Identical grid partition and grid-by-grid routing as ECGRID, but:

- the gateway election ignores battery level (nearest-to-center, then
  smallest ID);
- nobody ever sleeps: every host's transceiver idles at 830 mW, which
  is why the paper's Fig. 4 shows the whole GRID network dying at
  ~590 s (500 J / 0.863 W);
- handoffs need no RAS broadcast sequence since everyone is awake.

Because this class is the shared machinery with the energy features
switched off, the ECGRID-vs-GRID comparison isolates exactly the
paper's contribution.
"""

from __future__ import annotations

from repro.core.protocol import GridFamilyProtocol


class GridProtocol(GridFamilyProtocol):
    """The non-energy-aware baseline."""

    name = "grid"
    energy_aware = False
    uses_ras = False
    page_sleeping_hosts = False

    # No member of the family sleeps unless something actively puts it
    # to sleep; GridFamilyProtocol never does, so no overrides needed:
    # hosts stay in IDLE whenever not transmitting or receiving.
