"""Compile a :class:`~repro.faults.plan.FaultPlan` onto the calendar.

The injector is armed on a freshly built :class:`~repro.net.network
.Network` (before ``start()``): timed events (crashes, recoveries,
drains) become ordinary simulator events, and the probabilistic channel
faults install themselves as hooks on the medium
(:attr:`Medium.fault_hook`) and the paging channel
(:attr:`RasChannel.fault_hook`).  All randomness is drawn from two
dedicated, named RNG substreams (``fault-medium``, ``fault-page``), so

- the same seed and plan always produce the identical run, and
- a run *without* a plan never touches the fault streams — existing
  golden traces are bit-for-bit unaffected.

The injector keeps a time-stamped :attr:`log` of everything it actually
did (a crash scheduled for a host that already died on its own is a
no-op and logs as such), which the recovery metrics read afterwards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.faults.plan import (
    BatteryDrain,
    FaultPlan,
    MediumLossWindow,
    NodeCrash,
    NodeRecover,
    PageLoss,
    Partition,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.phy.radio import Radio


def _side(ev: Partition, pos) -> bool:
    coord = pos[0] if ev.axis == "x" else pos[1]
    return coord >= ev.boundary_m


def _in_region(region: Tuple[float, float, float, float], pos) -> bool:
    x0, y0, x1, y1 = region
    return x0 <= pos[0] <= x1 and y0 <= pos[1] <= y1


class FaultInjector:
    """Executes one plan against one network."""

    def __init__(self, network: "Network", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.sim = network.sim
        #: (time, kind, detail) for every fault actually applied.
        self.log: List[Tuple[float, str, str]] = []
        self._armed = False
        self._partitions = [
            e for e in plan.events if isinstance(e, Partition)
        ]
        self._loss_windows = [
            e for e in plan.events if isinstance(e, MediumLossWindow)
        ]
        self._page_loss = [
            e for e in plan.events if isinstance(e, PageLoss)
        ]
        # Streams are derived lazily-by-name from the run seed; created
        # only when the corresponding fault kind exists, so fault-free
        # runs never consume (or even allocate) them.
        self._rng_medium = (
            self.sim.rng.stream("fault-medium") if self._loss_windows else None
        )
        self._rng_page = (
            self.sim.rng.stream("fault-page") if self._page_loss else None
        )

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Install hooks and schedule every timed event.  Idempotent
        per injector; call before ``network.start()``."""
        if self._armed:
            return
        self._armed = True
        if self._partitions or self._loss_windows:
            self.network.medium.fault_hook = self._medium_fault
        if self._partitions or self._page_loss:
            self.network.ras.fault_hook = self._page_fault
        for ev in self.plan.events:
            if isinstance(ev, NodeCrash):
                self.sim.at(ev.at_s, self._crash, ev)
            elif isinstance(ev, NodeRecover):
                self.sim.at(ev.at_s, self._recover, ev)
            elif isinstance(ev, BatteryDrain):
                self.sim.at(ev.at_s, self._drain, ev)

    # ------------------------------------------------------------------
    # Timed events
    # ------------------------------------------------------------------
    def _trace(self, kind: str, node_id: int, applied: bool) -> None:
        tr = self.network.tracer
        if tr.fault:
            tr.emit("fault." + kind, node=node_id, applied=applied)

    def _crash(self, ev: NodeCrash) -> None:
        node = self.network.nodes_by_id.get(ev.node_id)
        if node is None or not node.alive:
            self.log.append((self.sim.now, "node_crash",
                             f"node {ev.node_id} already down"))
            self._trace("crash", ev.node_id, False)
            return
        node.crash()
        self.log.append((self.sim.now, "node_crash", f"node {ev.node_id}"))
        self._trace("crash", ev.node_id, True)

    def _recover(self, ev: NodeRecover) -> None:
        revived = self.network.revive(ev.node_id, ev.energy_frac)
        detail = f"node {ev.node_id}" + ("" if revived else " still alive")
        self.log.append((self.sim.now, "node_recover", detail))
        self._trace("recover", ev.node_id, revived)

    def _drain(self, ev: BatteryDrain) -> None:
        node = self.network.nodes_by_id.get(ev.node_id)
        if node is None or not node.alive or node.battery.infinite:
            self.log.append((self.sim.now, "battery_drain",
                             f"node {ev.node_id} not drainable"))
            self._trace("drain", ev.node_id, False)
            return
        node.battery.drain(ev.joules, self.sim.now)
        self.log.append((self.sim.now, "battery_drain",
                         f"node {ev.node_id} -{ev.joules:g}J"))
        self._trace("drain", ev.node_id, True)
        # Surface the consequence (depletion / band change) immediately.
        node.monitor.poll()

    # ------------------------------------------------------------------
    # Channel hooks
    # ------------------------------------------------------------------
    def _medium_fault(self, tx_pos, receiver: "Radio") -> bool:
        """Per-reception loss decision (True = frame lost here)."""
        now = self.sim.now
        rx_pos = None
        for ev in self._partitions:
            if ev.start_s <= now < ev.end_s:
                if rx_pos is None:
                    rx_pos = receiver.position()
                if _side(ev, tx_pos) != _side(ev, rx_pos):
                    return True
        for ev in self._loss_windows:
            if ev.start_s <= now < ev.end_s:
                if ev.region is not None:
                    if rx_pos is None:
                        rx_pos = receiver.position()
                    if not (_in_region(ev.region, tx_pos)
                            or _in_region(ev.region, rx_pos)):
                        continue
                if self._rng_medium.random() < ev.drop_prob:
                    return True
        return False

    def _page_fault(
        self, sender: "Radio", target: Optional["Radio"], broadcast: bool
    ) -> bool:
        """Per-burst paging loss decision (True = burst lost)."""
        now = self.sim.now
        for ev in self._page_loss:
            if ev.start_s <= now < ev.end_s:
                if self._rng_page.random() < ev.drop_prob:
                    return True
        if not broadcast and target is not None:
            tx_pos = sender.position()
            rx_pos = target.position()
            for ev in self._partitions:
                if (ev.start_s <= now < ev.end_s
                        and _side(ev, tx_pos) != _side(ev, rx_pos)):
                    return True
        return False
