"""Declarative fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a value object — an ordered tuple of typed
:class:`FaultEvent`\\ s — that fully describes the adversity injected
into one run.  Plans are frozen and hashable so they can serve as sweep
axis values, participate in :meth:`ExperimentConfig.cache_key`, and
round-trip losslessly through JSON (``ecgrid run --faults plan.json``).

The *plan* layer is pure data: nothing here touches a simulator.
Compilation onto the DES calendar (and the seeded randomness behind the
probabilistic events) lives in :mod:`repro.faults.inject`.

Event kinds
-----------
- :class:`NodeCrash` — a host fails instantly (no RETIRE, no notice);
- :class:`NodeRecover` — a crashed host comes back with a fresh
  protocol instance and a partially refilled battery;
- :class:`PageLoss` — RAS paging bursts are dropped with probability
  ``drop_prob`` over a time window;
- :class:`MediumLossWindow` — every frame reception is independently
  dropped with probability ``drop_prob`` over a time window, optionally
  restricted to a rectangular region;
- :class:`Partition` — the medium is severed along an axis-aligned
  line: frames (and unicast pages) crossing it are lost;
- :class:`BatteryDrain` — a host instantly loses ``joules`` of energy.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Type


@dataclass(frozen=True)
class FaultEvent:
    """Base class: every event carries a ``kind`` tag for JSON."""

    kind: str = field(init=False, default="")


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Host ``node_id`` fails at ``at_s`` (paper §3.2's "accident")."""

    at_s: float = 0.0
    node_id: int = 0
    kind: str = field(init=False, default="node_crash")


@dataclass(frozen=True)
class NodeRecover(FaultEvent):
    """Host ``node_id`` reboots at ``at_s`` with ``energy_frac`` of its
    battery capacity and a fresh protocol instance (all prior routing
    state is gone — exactly what a real reboot loses)."""

    at_s: float = 0.0
    node_id: int = 0
    energy_frac: float = 0.5
    kind: str = field(init=False, default="node_recover")


@dataclass(frozen=True)
class PageLoss(FaultEvent):
    """RAS paging bursts sent in ``[start_s, end_s)`` are lost with
    probability ``drop_prob`` (jammed/faded paging channel)."""

    start_s: float = 0.0
    end_s: float = 0.0
    drop_prob: float = 0.5
    kind: str = field(init=False, default="page_loss")


@dataclass(frozen=True)
class MediumLossWindow(FaultEvent):
    """Per-reception frame loss with probability ``drop_prob`` over
    ``[start_s, end_s)``.  ``region`` (x0, y0, x1, y1) restricts the
    fault to receptions whose sender *or* receiver stands inside the
    rectangle; ``None`` afflicts the whole field."""

    start_s: float = 0.0
    end_s: float = 0.0
    drop_prob: float = 0.3
    region: Optional[Tuple[float, float, float, float]] = None
    kind: str = field(init=False, default="medium_loss")


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Sever medium reachability between the two half-planes on either
    side of ``axis = boundary_m`` over ``[start_s, end_s)``: frames and
    unicast pages whose endpoints straddle the line are lost."""

    start_s: float = 0.0
    end_s: float = 0.0
    axis: str = "x"
    boundary_m: float = 0.0
    kind: str = field(init=False, default="partition")


@dataclass(frozen=True)
class BatteryDrain(FaultEvent):
    """Host ``node_id`` instantly loses ``joules`` at ``at_s`` (stuck
    peripheral, short, or a hostile auxiliary load)."""

    at_s: float = 0.0
    node_id: int = 0
    joules: float = 0.0
    kind: str = field(init=False, default="battery_drain")


#: kind tag -> event class (JSON dispatch).
EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.__dataclass_fields__["kind"].default: cls  # type: ignore[index]
    for cls in (
        NodeCrash,
        NodeRecover,
        PageLoss,
        MediumLossWindow,
        Partition,
        BatteryDrain,
    )
}


def event_from_dict(data: Mapping[str, Any]) -> FaultEvent:
    """Rebuild one event from its :func:`dataclasses.asdict` form."""
    d = dict(data)
    kind = d.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r}; choose from {sorted(EVENT_TYPES)}"
        )
    if d.get("region") is not None:
        d["region"] = tuple(d["region"])
    return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, hashable sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        # Tolerate list input (e.g. hand-built plans, JSON loads).
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __str__(self) -> str:
        return self.name or f"faults[{len(self.events)}]"

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            events=tuple(
                event_from_dict(e) for e in data.get("events", ())
            ),
            name=data.get("name", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def standard_fault_plan(
    intensity: float,
    *,
    sim_time_s: float,
    width_m: float,
    height_m: float,
    n_hosts: int,
    initial_energy_j: float,
    name: Optional[str] = None,
) -> FaultPlan:
    """A graduated stress plan mixing every disruptive fault kind.

    ``intensity`` in [0, 1] scales drop probabilities, the number of
    crashed hosts, and the injected battery drain; 0 yields an empty
    plan.  Times and geometry are fractions of the (post-scale) horizon
    and field, so the same intensity is comparable across scenario
    scales.  The host choices are deterministic (evenly spread ids) —
    all randomness stays in the injector's seeded streams.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be in [0, 1]")
    if intensity == 0.0:
        return FaultPlan((), name=name or "std-0")
    t = sim_time_s
    events: list = []
    # A vertical partition through the middle, mid-run.
    events.append(Partition(
        start_s=0.25 * t, end_s=0.40 * t, axis="x", boundary_m=width_m / 2.0,
    ))
    # A lossy-channel episode after the partition heals.
    events.append(MediumLossWindow(
        start_s=0.45 * t, end_s=0.60 * t, drop_prob=min(0.9, 0.8 * intensity),
    ))
    # A flaky paging channel over the middle half of the run.
    events.append(PageLoss(
        start_s=0.25 * t, end_s=0.75 * t, drop_prob=min(0.9, 0.8 * intensity),
    ))
    # Crash up to a quarter of the hosts, staggered; revive half later.
    n_crash = max(1, round(0.25 * intensity * n_hosts))
    step = max(1, n_hosts // n_crash)
    crashed = [(i * step) % n_hosts for i in range(n_crash)]
    for i, nid in enumerate(crashed):
        at = (0.30 + 0.20 * i / max(1, n_crash - 1)) * t if n_crash > 1 else 0.35 * t
        events.append(NodeCrash(at_s=at, node_id=nid))
    for nid in crashed[: max(1, n_crash // 2)]:
        events.append(NodeRecover(at_s=0.70 * t, node_id=nid, energy_frac=0.5))
    # Sudden energy loss on two survivors.
    drain = 0.5 * intensity * initial_energy_j
    for nid in ((crashed[-1] + 1) % n_hosts, (crashed[-1] + 2) % n_hosts):
        if nid not in crashed:
            events.append(BatteryDrain(at_s=0.20 * t, node_id=nid, joules=drain))
    return FaultPlan(tuple(events), name=name or f"std-{intensity:g}")


def disruption_times(plan: FaultPlan) -> Sequence[float]:
    """Sorted, de-duplicated onset times of the plan's disruptive
    events (recoveries are remedies, not disruptions)."""
    times = set()
    for ev in plan.events:
        if isinstance(ev, (NodeCrash, BatteryDrain)):
            times.add(ev.at_s)
        elif isinstance(ev, (PageLoss, MediumLossWindow, Partition)):
            times.add(ev.start_s)
    return sorted(times)
