"""Declarative fault injection: plans (pure data) + their execution.

See :mod:`repro.faults.plan` for the event vocabulary and
:mod:`repro.faults.inject` for how a plan lands on the calendar.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    BatteryDrain,
    EVENT_TYPES,
    FaultEvent,
    FaultPlan,
    MediumLossWindow,
    NodeCrash,
    NodeRecover,
    PageLoss,
    Partition,
    disruption_times,
    event_from_dict,
    standard_fault_plan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultEvent",
    "NodeCrash",
    "NodeRecover",
    "PageLoss",
    "MediumLossWindow",
    "Partition",
    "BatteryDrain",
    "EVENT_TYPES",
    "event_from_dict",
    "standard_fault_plan",
    "disruption_times",
]
