"""Command-line interface: regenerate any paper figure or run ad-hoc
experiments.

Examples::

    ecgrid run --protocol ecgrid --hosts 60 --time 400
    ecgrid fig4 --speed 1 --scale 0.25
    ecgrid fig8 --speed 10 --scale 0.2 --workers 4
    ecgrid ablation-hello --scale 0.2
    ecgrid fig4 --seeds 4 --workers 4    # parallel seed replication
    ecgrid fig4 --paper                  # full paper-scale parameters (slow)
    ecgrid serve --port 8642             # HTTP job server (docs/serving.md)

Figure subcommands run through the sweep engine: ``--workers N``
simulates grid points on N processes (``0`` = inline serial), and
results are cached on disk by config hash (``--cache-dir``,
``--no-cache``) so re-running a figure only simulates what changed.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    ELECTION_POLICIES,
    FIGURES,
    PROTOCOLS,
    ExperimentConfig,
    FigureData,
    ProtocolParams,
    ResultCache,
    SweepRunner,
    default_cache_dir,
    figure,
    run_experiment,
)
from repro.perf import bench as bench_mod


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--speed", type=float, default=1.0, help="max roaming speed (m/s)")
    p.add_argument("--scale", type=float, default=0.25, help="scenario scale factor (0,1]")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--paper", action="store_true", help="force scale=1.0 (paper scale)")
    p.add_argument("--csv", metavar="FILE", help="also write the figure as CSV")
    p.add_argument("--json", metavar="FILE", help="also write the figure as JSON")
    p.add_argument(
        "--seeds", type=int, default=1,
        help="replicate over N seeds (seed..seed+N-1) and average curves",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="simulate grid points on N processes (0 = inline serial)",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    p.add_argument(
        "--target-ci", type=float, default=None, metavar="REL",
        help="adaptive replication: add seeds per arm until every "
        "headline scalar's relative CI half-width is within REL "
        "(e.g. 0.05); overrides --seeds (see docs/sweeps.md)",
    )
    p.add_argument(
        "--max-seeds", type=int, default=16,
        help="adaptive replication cap per arm (with --target-ci)",
    )
    p.add_argument(
        "--min-seeds", type=int, default=3,
        help="adaptive replication pilot size (with --target-ci)",
    )


def _scale(args) -> float:
    return 1.0 if args.paper else args.scale


def _runner(args) -> SweepRunner:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return SweepRunner(workers=args.workers, cache=cache)


def _figure(name: str, args) -> FigureData:
    runner = _runner(args)
    adaptive = {}
    if args.target_ci is not None:
        adaptive = dict(
            target_ci=args.target_ci,
            max_seeds=args.max_seeds,
            min_seeds=args.min_seeds,
        )
    fig = figure(
        name,
        speed=args.speed,
        scale=_scale(args),
        seed=args.seed,
        seeds=args.seeds,
        runner=runner,
        **adaptive,
    )
    cached = 0 if runner.cache is None else runner.cache.hits
    simulated = None if runner.cache is None else runner.cache.misses
    print(
        f"sweep: {simulated if simulated is not None else 'all'} point(s) "
        f"simulated, {cached} cached (workers={args.workers})"
    )
    if fig.precision is not None:
        from repro.api import PrecisionReport

        print(PrecisionReport.from_dict(fig.precision).summary())
    return fig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="ecgrid",
        description="ECGRID (ICPP'03) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one ad-hoc experiment")
    run_p.add_argument("--protocol", choices=PROTOCOLS, default="ecgrid")
    run_p.add_argument("--hosts", type=int, default=100)
    run_p.add_argument("--time", type=float, default=2000.0)
    run_p.add_argument("--speed", type=float, default=1.0)
    run_p.add_argument("--pause", type=float, default=0.0)
    run_p.add_argument("--flows", type=int, default=10)
    run_p.add_argument("--rate", type=float, default=1.0)
    run_p.add_argument("--energy", type=float, default=500.0)
    run_p.add_argument("--area", type=float, default=1000.0)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument(
        "--election-policy", choices=sorted(ELECTION_POLICIES),
        default="paper",
        help="gateway-election policy (see docs/election.md)",
    )
    run_p.add_argument(
        "--partition", action="store_true",
        help="score the gateway partition (load balance, churn, "
        "coverage gaps) and print the report (see docs/election.md)",
    )
    run_p.add_argument(
        "--faults", metavar="FILE", default=None,
        help="JSON fault plan to inject into the run (see docs/faults.md)",
    )
    run_p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record protocol events and export them as schema-versioned "
        "JSONL to FILE (see docs/observability.md)",
    )
    run_p.add_argument(
        "--trace-filter", metavar="CATS", default=None,
        help="comma-separated trace categories to record "
        "(e.g. 'gateway,page'; default: all protocol categories)",
    )
    run_p.add_argument(
        "--audit", action="store_true",
        help="run the online invariant auditors against the trace bus "
        "and print their report (nonzero exit on violations)",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="attach the kernel profiler and print its per-category report",
    )
    run_p.add_argument(
        "--cprofile", metavar="FILE", default=None,
        help="also collect a cProfile trace and dump pstats to FILE "
        "(implies --profile)",
    )
    run_p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the plane into N per-process regions (statistical "
        "equivalence, not bit-exact; incompatible with --trace/--profile"
        "/--faults; defaults to ECGRID_SHARDS, see docs/performance.md)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="run the pinned kernel benchmark and append to BENCH_kernel.json",
    )
    bench_p.add_argument(
        "--suite", choices=sorted(bench_mod.SUITES), default="kernel",
        help="scenario suite: 'kernel' (reference topologies, "
        "BENCH_kernel.json), 'scale' (500/1000/2000-host topologies "
        "at the paper's density, BENCH_scale.json), or 'figures' "
        "(fixed vs adaptive replication at matched CI, "
        "BENCH_sweep.json)",
    )
    bench_p.add_argument(
        "--scenario", action="append",
        choices=sorted(bench_mod.ALL_SCENARIOS)
        + sorted(bench_mod.FIGURE_SCENARIOS),
        help="pinned scenario to run (repeatable; default: the suite)",
    )
    bench_p.add_argument("--label", default="", help="free-form record label")
    bench_p.add_argument(
        "--output", default=None,
        help="trajectory file to append to (default: the suite's file)",
    )
    bench_p.add_argument(
        "--no-append", action="store_true",
        help="print the record without touching the trajectory file",
    )
    bench_p.add_argument(
        "--trace-overhead", action="store_true",
        help="instead of the suite, measure tracing overhead on one "
        "pinned scenario (default scale-500, or the first --scenario); "
        "exit nonzero if it exceeds the budget",
    )
    bench_p.add_argument(
        "--shards", metavar="COUNTS", default=None,
        help="comma-separated shard counts (e.g. '1,2,4'): run the "
        "suite's scenarios as an ABBA-interleaved shard-count sweep "
        "(records keyed '<scenario>@s<count>') instead of the plain "
        "kernel benchmark",
    )
    bench_p.add_argument(
        "--compare", metavar="LABEL", default=None,
        help="also print speedup vs the newest record with this label "
        "in the trajectory file; exit nonzero if any scenario regressed "
        "more than 20%%",
    )

    for name in FIGURES:
        fig_p = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(fig_p)

    serve_p = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP job server "
        "(see docs/serving.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642)
    serve_p.add_argument(
        "--jobs", type=int, default=2,
        help="jobs simulating concurrently (executor threads)",
    )
    serve_p.add_argument(
        "--sweep-workers", type=int, default=0,
        help="process-pool width per sweep/figure job (0 = inline points)",
    )
    serve_p.add_argument(
        "--quota", type=int, default=4,
        help="max queued+running jobs per tenant before HTTP 429",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=None,
        help="per-grid-point timeout in seconds (pooled sweeps only)",
    )
    serve_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )

    watch_p = sub.add_parser(
        "watch", help="run a scenario printing ASCII map snapshots"
    )
    watch_p.add_argument("--protocol", choices=PROTOCOLS, default="ecgrid")
    watch_p.add_argument("--hosts", type=int, default=30)
    watch_p.add_argument("--area", type=float, default=600.0)
    watch_p.add_argument("--time", type=float, default=120.0)
    watch_p.add_argument("--every", type=float, default=20.0)
    watch_p.add_argument("--speed", type=float, default=1.0)
    watch_p.add_argument("--energy", type=float, default=100.0)
    watch_p.add_argument("--seed", type=int, default=1)

    args = parser.parse_args(argv)

    if args.command == "serve":
        from repro.serve import ServerConfig, serve

        return serve(
            ServerConfig(
                host=args.host,
                port=args.port,
                sweep_workers=args.sweep_workers,
                concurrency=args.jobs,
                max_active_per_tenant=args.quota,
                timeout_s=args.timeout,
                cache_dir=args.cache_dir,
                no_cache=args.no_cache,
            )
        )

    if args.command == "watch":
        from repro.api import build_network
        from repro.api import render_snapshot as render

        cfg = ExperimentConfig(
            protocol=args.protocol,
            n_hosts=args.hosts,
            width_m=args.area,
            height_m=args.area,
            max_speed_mps=args.speed,
            initial_energy_j=args.energy,
            sim_time_s=args.time,
            n_flows=max(2, args.hosts // 10),
            seed=args.seed,
        )
        network = build_network(cfg)
        network.start()
        t = 0.0
        while t < args.time:
            t = min(t + args.every, args.time)
            network.sim.run(until=t)
            print(render(network))
            print()
        log = network.packet_log
        print(f"delivery {log.delivery_rate() * 100:.1f}% "
              f"({log.delivered_count}/{log.sent_count})")
        return 0

    if args.command == "run":
        faults = None
        if args.faults:
            from repro.api import FaultPlan

            with open(args.faults) as fh:
                faults = FaultPlan.from_json(fh.read())
        cfg = ExperimentConfig(
            protocol=args.protocol,
            n_hosts=args.hosts,
            sim_time_s=args.time,
            max_speed_mps=args.speed,
            pause_time_s=args.pause,
            n_flows=args.flows,
            flow_rate_pps=args.rate,
            initial_energy_j=args.energy,
            width_m=args.area,
            height_m=args.area,
            seed=args.seed,
            faults=faults,
            params=ProtocolParams(election_policy=args.election_policy),
            evaluate_partition=args.partition,
        )
        instruments = ()
        profiler = None
        if args.profile or args.cprofile:
            from repro.perf import KernelProfiler

            profiler = KernelProfiler(cprofile=args.cprofile is not None)
            instruments = (profiler,)
        tracer = None
        auditors = []
        if args.trace or args.audit:
            from repro.obs import Tracer, audit_report, standard_auditors

            categories = None
            if args.trace_filter:
                categories = tuple(
                    c.strip() for c in args.trace_filter.split(",") if c.strip()
                )
            tracer = Tracer(categories=categories)
            if args.audit:
                auditors = standard_auditors()
                for auditor in auditors:
                    tracer.subscribe(auditor)
        if args.shards is not None and args.shards > 1 and (
            instruments or tracer is not None or faults is not None
        ):
            print(
                "error: --shards is statistical and cannot honor "
                "--trace/--audit/--profile/--faults; drop one or the other"
            )
            return 2
        result = run_experiment(
            cfg, instruments=instruments, tracer=tracer, shards=args.shards
        )
        print(result.summary())
        if result.partition:
            scores = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(result.partition.items())
            )
            print(f"  partition {scores}")
        if tracer is not None and args.trace:
            tracer.export_jsonl(args.trace)
            print(
                f"wrote {sum(tracer.counts().values())} trace event(s) "
                f"to {args.trace}"
            )
        if auditors:
            for auditor in auditors:
                auditor.finish(cfg.sim_time_s)
            print()
            print(audit_report(auditors))
        if profiler is not None:
            print()
            print(profiler.report())
            if args.cprofile:
                profiler.dump_cprofile(args.cprofile)
                print(f"wrote cProfile stats to {args.cprofile}")
        if auditors and any(a.violations for a in auditors):
            return 3
        return 0

    if args.command == "bench":
        if args.trace_overhead:
            scenario = (args.scenario or ["scale-500"])[0]
            data = bench_mod.measure_trace_overhead(scenario)
            print(bench_mod.format_trace_overhead(data))
            return (
                1 if data["overhead_frac"] > bench_mod.TRACE_OVERHEAD_BUDGET
                else 0
            )
        suite_scenarios, suite_path = bench_mod.SUITES[args.suite]
        names = args.scenario or sorted(suite_scenarios)
        output = args.output or suite_path
        if args.suite == "figures":
            if args.shards or args.compare:
                print(
                    "error: --shards/--compare do not apply to the "
                    "figures suite (its records compare fixed vs "
                    "adaptive internally)"
                )
                return 2
            unknown = [
                n for n in names if n not in bench_mod.FIGURE_SCENARIOS
            ]
            if unknown:
                print(
                    f"error: {unknown} are not figures-suite scenarios "
                    f"(choose from "
                    f"{sorted(bench_mod.FIGURE_SCENARIOS)})"
                )
                return 2
            record = bench_mod.make_figure_record(names, label=args.label)
            print(bench_mod.format_figure_record(record))
            if not args.no_append:
                bench_mod.append_record(record, output)
                print(f"appended to {output}")
            return 0
        bad = [n for n in names if n in bench_mod.FIGURE_SCENARIOS]
        if bad:
            print(
                f"error: {bad} belong to the figures suite; run them "
                f"with --suite figures"
            )
            return 2
        if args.shards:
            counts = tuple(
                int(c) for c in args.shards.split(",") if c.strip()
            )
            record = bench_mod.make_shard_record(
                scenarios=names, shard_counts=counts, label=args.label
            )
        else:
            record = bench_mod.make_record(scenarios=names, label=args.label)
        print(bench_mod.format_record(record))
        if not args.no_append:
            bench_mod.append_record(record, output)
            print(f"appended to {output}")
        if args.compare is not None:
            baseline = bench_mod.latest_labeled(args.compare, output)
            if baseline is None:
                print(f"no record labeled {args.compare!r} in {output}")
                return 2
            report, regressed = bench_mod.compare_records(record, baseline)
            print(report)
            return 1 if regressed else 0
        return 0

    fig = _figure(args.command, args)
    print(fig.to_text())
    if getattr(args, "csv", None):
        from repro.api import figure_to_csv

        with open(args.csv, "w") as fh:
            fh.write(figure_to_csv(fig))
        print(f"wrote {args.csv}")
    if getattr(args, "json", None):
        from repro.api import figure_to_json

        with open(args.json, "w") as fh:
            fh.write(figure_to_json(fig))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
