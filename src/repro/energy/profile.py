"""Radio modes, power profiles, and battery-level bands."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RadioMode(enum.Enum):
    """Transceiver operating mode.

    ``OFF`` means the host is dead (battery exhausted); ``SLEEP`` means
    the transceiver is powered down but the host is alive and can be
    woken through its RAS.
    """

    TX = "tx"
    RX = "rx"
    IDLE = "idle"
    SLEEP = "sleep"
    OFF = "off"


class EnergyLevel(enum.IntEnum):
    """The paper's three battery bands (ordered for election priority)."""

    LOWER = 0      # Rbrc <  0.2
    BOUNDARY = 1   # 0.2 <= Rbrc <= 0.6
    UPPER = 2      # Rbrc >  0.6


#: Band thresholds on the ratio of battery remaining capacity (Rbrc).
UPPER_THRESHOLD = 0.6
LOWER_THRESHOLD = 0.2


def level_of(rbrc: float) -> EnergyLevel:
    """Map an Rbrc ratio to its :class:`EnergyLevel` band (paper eq. 1)."""
    if rbrc > UPPER_THRESHOLD:
        return EnergyLevel.UPPER
    if rbrc >= LOWER_THRESHOLD:
        return EnergyLevel.BOUNDARY
    return EnergyLevel.LOWER


@dataclass(frozen=True)
class PowerProfile:
    """Per-mode power draw in watts.

    ``gps_w`` is drawn continuously while the host is alive, in every
    mode including sleep (each host carries a GPS in all three compared
    protocols, §4).  The RAS paging receiver's draw is negligible and
    ignored, exactly as the paper does.
    """

    tx_w: float = 1.400
    rx_w: float = 1.000
    idle_w: float = 0.830
    sleep_w: float = 0.130
    gps_w: float = 0.033

    def radio_power(self, mode: RadioMode) -> float:
        """Radio draw for ``mode`` (watts), excluding GPS."""
        if mode is RadioMode.TX:
            return self.tx_w
        if mode is RadioMode.RX:
            return self.rx_w
        if mode is RadioMode.IDLE:
            return self.idle_w
        if mode is RadioMode.SLEEP:
            return self.sleep_w
        return 0.0

    def total_power(self, mode: RadioMode) -> float:
        """Radio + GPS draw for ``mode`` (watts); zero when OFF."""
        if mode is RadioMode.OFF:
            return 0.0
        return self.radio_power(mode) + self.gps_w


#: The exact evaluation profile from the paper's §4.
PAPER_PROFILE = PowerProfile()
