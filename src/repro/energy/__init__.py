"""Energy modeling: per-mode power profiles and analytic batteries.

The power constants reproduce the measurements the paper adopts from
Feeney & Nilsson (Cabletron Roamabout 802.11 DS, 2 Mbps): transmit
1400 mW, receive 1000 mW, idle 830 mW, sleep 130 mW, plus 33 mW for the
GPS receiver.  Energy is integrated in closed form between radio-state
transitions; battery depletion and battery-level band crossings are
scheduled as simulator events, never polled.
"""

from repro.energy.profile import (
    EnergyLevel,
    PowerProfile,
    RadioMode,
    PAPER_PROFILE,
    level_of,
)
from repro.energy.battery import Battery
from repro.energy.accounting import BatteryMonitor

__all__ = [
    "RadioMode",
    "EnergyLevel",
    "PowerProfile",
    "PAPER_PROFILE",
    "level_of",
    "Battery",
    "BatteryMonitor",
]
