"""Battery event scheduling: depletion and band-crossing callbacks.

A :class:`BatteryMonitor` watches one battery and raises its state
transitions (depletion, band crossings) as simulator events.

Design: radios switch draw thousands of times per simulated second
(every overheard frame), so the monitor must not touch the calendar on
every :meth:`set_draw`.  Instead it keeps a single pending *check*
event booked at a **conservative** time — the earliest instant the next
threshold could possibly be crossed, assuming the maximum draw the
hardware can sustain (``max_draw_w``).  A check that fires before the
actual crossing simply re-books itself; the interval shrinks
geometrically (with a small floor), so one battery's whole lifetime
costs O(log) events and **zero cancellations** — no dead events ever
accumulate in the calendar.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.des.core import Simulator
from repro.energy.battery import Battery
from repro.energy.profile import (
    EnergyLevel,
    LOWER_THRESHOLD,
    UPPER_THRESHOLD,
)

LevelCallback = Callable[[EnergyLevel, EnergyLevel], None]
DepletedCallback = Callable[[], None]

#: Minimum spacing between conservative checks (bounds the event count
#: near a crossing and the detection lag after it).
_CHECK_FLOOR_S = 0.005


class BatteryMonitor:
    """Raises one battery's threshold crossings as simulator events."""

    def __init__(
        self,
        sim: Simulator,
        battery: Battery,
        on_depleted: Optional[DepletedCallback] = None,
        on_level_change: Optional[LevelCallback] = None,
        max_draw_w: float = 1.5,
    ) -> None:
        self.sim = sim
        self.battery = battery
        self.on_depleted = on_depleted
        self.on_level_change = on_level_change
        self.max_draw_w = max_draw_w
        self._last_level = battery.level(sim.now)
        self._fired_depleted = False
        self._check_pending = False

    # ------------------------------------------------------------------
    def set_draw(self, watts: float) -> None:
        """Account the elapsed interval, switch the draw, and make sure
        a check event is booked if anything can still change.

        :meth:`Battery.set_draw` is inlined here with its exact
        arithmetic — this pair is the hottest call chain of a whole
        simulation (every radio mode flip lands here).
        """
        battery = self.battery
        now = self.sim.now
        if battery._arr is not None:
            # Array-backend mirror attached: the inlined arithmetic
            # below would race the (possibly dirty) array row, so route
            # through ``Battery.set_draw`` — which reconciles, applies
            # the *identical* arithmetic, and writes back.
            battery.set_draw(watts, now)
            if battery.depleted:
                self._fire_depleted()
                return
            if not self._check_pending:
                self._book_check()
            return
        if watts < 0:
            raise ValueError("draw cannot be negative")
        last = battery._last_t
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        if battery.infinite:
            battery._last_t = now
        else:
            battery._remaining -= battery._draw_w * (now - last)
            if battery._remaining <= 1e-12:
                battery._remaining = 0.0
                battery.depleted = True
            battery._last_t = now
        battery._draw_w = watts
        if battery.depleted:
            self._fire_depleted()
            return
        if not self._check_pending:
            self._book_check()

    def reschedule(self) -> None:
        """Compatibility hook: ensure a check is booked."""
        if not self._check_pending and not self.battery.depleted:
            self._book_check()

    def poll(self) -> None:
        """Re-evaluate *now*, after an out-of-band battery change (an
        injected drain): fires depletion or a band crossing immediately
        instead of waiting for the next conservative check, then makes
        sure a check stays booked.  Never creates a second check chain.
        """
        if self._fired_depleted:
            return
        battery = self.battery
        battery.settle(self.sim.now)
        if battery.depleted:
            self._fire_depleted()
            return
        level = battery.level(self.sim.now)
        if level != self._last_level:
            old, self._last_level = self._last_level, level
            if self.on_level_change is not None:
                self.on_level_change(old, level)
            if self._fired_depleted:  # callback may have killed the node
                return
        if not self._check_pending:
            self._book_check()

    def reactivate(self) -> None:
        """Re-arm after an injected recovery refilled the battery
        outside the normal monotone-discharge lifecycle."""
        self._fired_depleted = False
        self._last_level = self.battery.level(self.sim.now)
        if not self._check_pending and not self.battery.depleted:
            self._book_check()

    # ------------------------------------------------------------------
    def _next_threshold_j(self, now: float) -> float:
        """Energy (joules) above the next threshold below current Rbrc."""
        if self.battery.infinite:
            return math.inf
        remaining = self.battery.remaining_at(now)
        rbrc = remaining / self.battery.capacity_j
        if rbrc > UPPER_THRESHOLD:
            return remaining - UPPER_THRESHOLD * self.battery.capacity_j
        if rbrc >= LOWER_THRESHOLD:
            return remaining - LOWER_THRESHOLD * self.battery.capacity_j
        return remaining  # next event below LOWER is depletion

    def _book_check(self) -> None:
        if self.battery.infinite or self._fired_depleted:
            return
        now = self.sim.now
        margin = self._next_threshold_j(now)
        if math.isinf(margin):
            return
        # Earliest the threshold can be reached, at worst-case draw.
        delay = max(margin / self.max_draw_w, _CHECK_FLOOR_S)
        self._check_pending = True
        arr = self.battery._arr
        if arr is not None:
            arr.safe[self.battery._idx] = True
        self.sim.after(delay, self._check, wheel=True)

    def _check(self) -> None:
        self._check_pending = False
        arr = self.battery._arr
        if arr is not None:
            # ``safe`` is ``infinite | pending``, but an infinite
            # battery never books a check, so this site only ever sees
            # finite rows — plain False is exact.
            arr.safe[self.battery._idx] = False
        if self._fired_depleted:
            return
        now = self.sim.now
        self.battery.settle(now)
        if self.battery.remaining_at(now) <= 0.0 or self.battery.depleted:
            self._fire_depleted()
            return
        level = self.battery.level(now)
        if level != self._last_level:
            old, self._last_level = self._last_level, level
            if self.on_level_change is not None:
                self.on_level_change(old, level)
            if self._fired_depleted:  # callback may have killed the node
                return
        if self.battery.draw_w > 0.0 or not math.isinf(
            self.battery.time_until_empty(now)
        ):
            self._book_check()

    def _fire_depleted(self) -> None:
        if self._fired_depleted:
            return
        self._fired_depleted = True
        if self.on_depleted is not None:
            self.on_depleted()

    def cancel(self) -> None:
        """Stop raising events (node torn down).  The pending check, if
        any, becomes a no-op via the depleted flag."""
        self._fired_depleted = True
