"""Analytic battery: integrates a piecewise-constant power draw."""

from __future__ import annotations

import math

from repro.energy.profile import EnergyLevel, level_of


class Battery:
    """Energy store with closed-form accounting.

    The draw is piecewise constant between calls to :meth:`set_draw`;
    remaining energy at any time is computed analytically, so no
    periodic "tick" events are needed.  ``capacity_j = math.inf`` models
    the paper's Model-1 infinite-energy endpoints: such a battery never
    depletes and always reports full.
    """

    __slots__ = (
        "capacity_j", "infinite", "depleted",
        "_remaining", "_draw_w", "_last_t",
        "_arr", "_idx",
    )

    def __init__(self, capacity_j: float, initial_j: float | None = None) -> None:
        if capacity_j <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_j = capacity_j
        #: Optional array-backend mirror (see
        #: :mod:`repro.phy.array_backend`): while attached, batched
        #: settles may run ahead of the object fields, and every public
        #: entry point below reconciles (``pull``) before reading and
        #: writes back (``push``) after mutating.  ``None`` — the
        #: default and the state whenever ``ECGRID_ARRAY_PHY`` is off —
        #: keeps every path below byte-identical to the object kernel.
        self._arr = None
        self._idx = -1
        #: Plain attributes, not properties: ``set_draw`` runs for every
        #: radio mode flip (hundreds of thousands per simulation) and
        #: descriptor dispatch was a visible slice of its cost.
        self.infinite = math.isinf(capacity_j)
        self._remaining = capacity_j if initial_j is None else initial_j
        if self._remaining < 0 or self._remaining > capacity_j:
            raise ValueError("initial charge outside [0, capacity]")
        self._draw_w = 0.0
        self._last_t = 0.0
        self.depleted = self._remaining == 0.0

    # ------------------------------------------------------------------
    @property
    def draw_w(self) -> float:
        """Current draw in watts."""
        if self._arr is not None:
            self._arr.pull(self)
        return self._draw_w

    def _settle(self, now: float) -> None:
        """Charge the elapsed interval against the store."""
        if now < self._last_t:
            raise ValueError(f"time went backwards: {now} < {self._last_t}")
        if self.infinite:
            self._last_t = now
            return
        spent = self._draw_w * (now - self._last_t)
        self._remaining -= spent
        if self._remaining <= 1e-12:
            self._remaining = 0.0
            self.depleted = True
        self._last_t = now

    def settle(self, now: float) -> None:
        """Fold the elapsed interval into the store without changing the
        draw (updates the ``depleted`` flag at observation points)."""
        arr = self._arr
        if arr is not None:
            arr.pull(self)
            self._settle(now)
            arr.push(self)
            return
        self._settle(now)

    def exhaust(self, now: float) -> None:
        """Settle, then zero the store instantly (a crash fault: the
        battery is simply gone).  No-op for infinite batteries."""
        if self.infinite:
            return
        arr = self._arr
        if arr is not None:
            arr.pull(self)
        self._settle(now)
        self._remaining = 0.0
        self.depleted = True
        if arr is not None:
            arr.push(self)

    def drain(self, joules: float, now: float) -> None:
        """Remove ``joules`` instantly (injected fault or an auxiliary
        load outside the radio's mode timeline).  The caller is
        responsible for surfacing a resulting depletion — see
        :meth:`BatteryMonitor.poll <repro.energy.accounting
        .BatteryMonitor.poll>`."""
        if joules < 0:
            raise ValueError("cannot drain a negative amount")
        if self.infinite:
            return
        arr = self._arr
        if arr is not None:
            arr.pull(self)
        self._settle(now)
        self._remaining -= joules
        if self._remaining <= 1e-12:
            self._remaining = 0.0
            self.depleted = True
        if arr is not None:
            arr.push(self)

    def recharge(self, joules: float, now: float) -> None:
        """Refill ``joules`` (capped at capacity) and clear depletion —
        the revival path of injected node recoveries."""
        if joules < 0:
            raise ValueError("cannot recharge a negative amount")
        if self.infinite:
            return
        arr = self._arr
        if arr is not None:
            arr.pull(self)
        self._settle(now)
        self._remaining = min(self.capacity_j, self._remaining + joules)
        self.depleted = self._remaining == 0.0
        if arr is not None:
            arr.push(self)

    # ------------------------------------------------------------------
    def set_draw(self, watts: float, now: float) -> None:
        """Account for the interval since the last change, then switch
        the draw to ``watts``.

        The settle is inlined (same arithmetic, same rounding as
        :meth:`_settle`) — this is the hottest battery entry point.
        """
        if watts < 0:
            raise ValueError("draw cannot be negative")
        arr = self._arr
        if arr is not None:
            arr.pull(self)
        last = self._last_t
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        if self.infinite:
            self._last_t = now
        else:
            self._remaining -= self._draw_w * (now - last)
            if self._remaining <= 1e-12:
                self._remaining = 0.0
                self.depleted = True
            self._last_t = now
        self._draw_w = watts
        if arr is not None:
            arr.push(self)

    def remaining_at(self, now: float) -> float:
        """Joules remaining at ``now`` (extrapolating the current draw)."""
        if self.infinite:
            return math.inf
        if self.depleted:
            return 0.0
        if self._arr is not None:
            self._arr.pull(self)
        rem = self._remaining - self._draw_w * (now - self._last_t)
        return max(rem, 0.0)

    def consumed_at(self, now: float) -> float:
        """Joules consumed since construction (0 for infinite batteries)."""
        if self.infinite:
            return 0.0
        return self.capacity_j - self.remaining_at(now)

    def rbrc(self, now: float) -> float:
        """Ratio of battery remaining capacity (paper eq. 1)."""
        if self.infinite:
            return 1.0
        return self.remaining_at(now) / self.capacity_j

    def level(self, now: float) -> EnergyLevel:
        """Current battery band."""
        return level_of(self.rbrc(now))

    # ------------------------------------------------------------------
    # Predictions used to schedule events
    # ------------------------------------------------------------------
    def time_until_empty(self, now: float) -> float:
        """Seconds until depletion at the current draw (inf if never)."""
        if self.infinite:
            return math.inf
        if self.depleted:
            return 0.0
        if self._arr is not None:
            self._arr.pull(self)
        if self._draw_w == 0.0:
            return math.inf
        return self.remaining_at(now) / self._draw_w

    def time_until_rbrc(self, target: float, now: float) -> float:
        """Seconds until Rbrc falls to ``target`` at the current draw
        (inf if never, 0 if already at or below)."""
        if self._arr is not None:
            self._arr.pull(self)
        if self.infinite or self._draw_w == 0.0:
            return math.inf if self.rbrc(now) > target else 0.0
        delta = self.remaining_at(now) - target * self.capacity_j
        if delta <= 0:
            return 0.0
        return delta / self._draw_w
