"""repro — reproduction of "Energy-Conserving Grid Routing Protocol in
Mobile Ad Hoc Networks" (Chao, Sheu, Hu — ICPP 2003).

The package is a full MANET simulation stack built for this paper:

- :mod:`repro.des` — discrete-event kernel;
- :mod:`repro.geo` / :mod:`repro.mobility` — grid geometry and analytic
  random-waypoint mobility;
- :mod:`repro.energy` / :mod:`repro.phy` / :mod:`repro.mac` — batteries,
  radios, the shared medium, RAS paging, CSMA/CA;
- :mod:`repro.core` — **ECGRID**, the paper's protocol;
- :mod:`repro.protocols` — the GRID and GAF baselines (+ flooding);
- :mod:`repro.experiments` — the harness regenerating Figures 4–8
  (import it through the :mod:`repro.api` facade);
- :mod:`repro.obs` — structured tracing, counters, invariant auditors;
- :mod:`repro.api` — the supported import surface of the experiment
  layer (``run`` / ``sweep`` / ``figure`` / ``load_result``);
- :mod:`repro.serve` — the asyncio job server (``ecgrid serve``).

Quick start::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(protocol="ecgrid",
                                             n_hosts=60,
                                             sim_time_s=400.0))
    print(result.summary())
"""

from repro.des import Simulator
from repro.geo import GridMap, Vec2, max_grid_side
from repro.energy import Battery, EnergyLevel, PAPER_PROFILE, PowerProfile, RadioMode
from repro.mobility import RandomWaypoint, StaticPosition
from repro.net import Network, NetworkConfig, Node, DataPacket
from repro.protocols import ProtocolParams
from repro.protocols.grid import GridProtocol
from repro.protocols.gaf import GafParams, GafProtocol
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.aodv import AodvParams, AodvProtocol
from repro.protocols.span import SpanParams, SpanProtocol
from repro.protocols.dsdv import DsdvParams, DsdvProtocol
from repro.core import EcGridProtocol
from repro.faults import (
    BatteryDrain,
    FaultPlan,
    MediumLossWindow,
    NodeCrash,
    NodeRecover,
    PageLoss,
    Partition,
    standard_fault_plan,
)
# The experiment layer is consumed through its facade — the same
# surface the CLI and the job server use (see docs/sweeps.md).
from repro.api import (
    ExperimentConfig,
    ExperimentResult,
    FigureData,
    ResultCache,
    SweepRun,
    SweepRunner,
    SweepSpec,
    figure,
    load_result,
    run_experiment,
)
from repro import api
from repro.obs import (
    CounterRegistry,
    Tracer,
    audit_report,
    load_jsonl,
    standard_auditors,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "GridMap",
    "Vec2",
    "max_grid_side",
    "Battery",
    "EnergyLevel",
    "PowerProfile",
    "PAPER_PROFILE",
    "RadioMode",
    "RandomWaypoint",
    "StaticPosition",
    "Network",
    "NetworkConfig",
    "Node",
    "DataPacket",
    "ProtocolParams",
    "EcGridProtocol",
    "GridProtocol",
    "GafProtocol",
    "GafParams",
    "AodvProtocol",
    "AodvParams",
    "SpanProtocol",
    "SpanParams",
    "DsdvProtocol",
    "DsdvParams",
    "FloodingProtocol",
    "FaultPlan",
    "NodeCrash",
    "NodeRecover",
    "PageLoss",
    "MediumLossWindow",
    "Partition",
    "BatteryDrain",
    "standard_fault_plan",
    "api",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureData",
    "ResultCache",
    "SweepRun",
    "SweepRunner",
    "SweepSpec",
    "figure",
    "load_result",
    "run_experiment",
    "CounterRegistry",
    "Tracer",
    "audit_report",
    "load_jsonl",
    "standard_auditors",
    "__version__",
]
