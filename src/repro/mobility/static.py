"""A host that never moves (infrastructure nodes, unit tests)."""

from __future__ import annotations

import math

from repro.geo.vector import Vec2
from repro.mobility.base import MobilityModel, Segment


class StaticPosition(MobilityModel):
    """A single infinite zero-velocity segment at ``pos``."""

    def __init__(self, pos: Vec2, start_time: float = 0.0) -> None:
        super().__init__(start_time)
        self.pos = pos
        self._segments.append(
            Segment(start_time, math.inf, pos, Vec2(0.0, 0.0))
        )

    def _generate_next(self) -> Segment:  # pragma: no cover - unreachable
        raise AssertionError("static trajectory has no further segments")
