"""Random-direction mobility.

The classic alternative to random waypoint: pick a heading and a speed,
travel until hitting the area boundary (or for an exponential epoch),
pause, pick a new heading.  Unlike random waypoint, the stationary
node distribution is *uniform* — no center-of-area density bulge — so
comparing results across the two models separates protocol effects
from RWP's well-known density artifact.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.geo.vector import Vec2
from repro.mobility.base import MobilityModel, Segment
from repro.mobility.waypoint import SPEED_FLOOR


class RandomDirection(MobilityModel):
    """Travel on a random heading to the boundary, pause, repeat."""

    def __init__(
        self,
        rng: random.Random,
        width: float,
        height: float,
        min_speed: float = 0.0,
        max_speed: float = 1.0,
        pause_time: float = 0.0,
        start: Optional[Vec2] = None,
        start_time: float = 0.0,
        speed_floor: float = SPEED_FLOOR,
    ) -> None:
        super().__init__(start_time)
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        if min_speed < 0 or min_speed > max_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.rng = rng
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self.speed_floor = speed_floor
        self._pos = start if start is not None else Vec2(
            rng.uniform(0.0, width), rng.uniform(0.0, height)
        )
        self._time = start_time
        self._pausing = False

    def _boundary_hit(self, pos: Vec2, direction: Vec2) -> Vec2:
        """The first point where a ray from ``pos`` leaves the area."""
        best_t = math.inf
        if direction.x > 0:
            best_t = min(best_t, (self.width - pos.x) / direction.x)
        elif direction.x < 0:
            best_t = min(best_t, (0.0 - pos.x) / direction.x)
        if direction.y > 0:
            best_t = min(best_t, (self.height - pos.y) / direction.y)
        elif direction.y < 0:
            best_t = min(best_t, (0.0 - pos.y) / direction.y)
        return Vec2(
            min(max(pos.x + direction.x * best_t, 0.0), self.width),
            min(max(pos.y + direction.y * best_t, 0.0), self.height),
        )

    def _generate_next(self) -> Segment:
        if self._pausing and self.pause_time > 0.0:
            seg = Segment(self._time, self._time + self.pause_time,
                          self._pos, Vec2(0.0, 0.0))
            self._time = seg.t1
            self._pausing = False
            return seg
        self._pausing = True
        theta = self.rng.uniform(0.0, 2.0 * math.pi)
        direction = Vec2(math.cos(theta), math.sin(theta))
        dest = self._boundary_hit(self._pos, direction)
        speed = max(self.speed_floor,
                    self.rng.uniform(self.min_speed, self.max_speed))
        leg = dest - self._pos
        length = leg.norm()
        if length < 1e-9:
            # Already on the boundary heading outward: bounce with a
            # short pause and redraw next time.
            seg = Segment(self._time, self._time + 1.0, self._pos,
                          Vec2(0.0, 0.0))
            self._time = seg.t1
            return seg
        duration = length / speed
        seg = Segment(self._time, self._time + duration, self._pos,
                      leg.scale(speed / length))
        self._pos = dest
        self._time = seg.t1
        return seg
