"""Trajectory traces: replaying explicit waypoint lists, and recording
traces from live models (for regression tests and debugging)."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geo.vector import Vec2
from repro.mobility.base import MobilityModel, Segment

TracePoint = Tuple[float, Vec2]


class TraceMobility(MobilityModel):
    """Replay a list of timestamped waypoints.

    Between consecutive waypoints the node moves linearly; after the
    last waypoint it stays put forever.  Waypoint times must be strictly
    increasing.
    """

    def __init__(self, points: Sequence[TracePoint]) -> None:
        if not points:
            raise ValueError("trace needs at least one waypoint")
        times = [t for t, _ in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be strictly increasing")
        super().__init__(start_time=points[0][0])
        for (t0, p0), (t1, p1) in zip(points, points[1:]):
            v = (p1 - p0).scale(1.0 / (t1 - t0))
            self._segments.append(Segment(t0, t1, p0, v))
        last_t, last_p = points[-1]
        self._segments.append(Segment(last_t, math.inf, last_p, Vec2(0.0, 0.0)))

    def _generate_next(self) -> Segment:  # pragma: no cover - unreachable
        raise AssertionError("trace trajectory has no further segments")


def record_trace(
    model: MobilityModel, start: float, until: float, step: float
) -> List[TracePoint]:
    """Sample ``model`` every ``step`` seconds into a waypoint list.

    The sampled trace replayed through :class:`TraceMobility` matches the
    source model exactly at sample instants and approximately between
    them (exactly, if ``step`` divides every segment).
    """
    if step <= 0:
        raise ValueError("step must be positive")
    points: List[TracePoint] = []
    t = start
    while t < until:
        points.append((t, model.position(t)))
        t += step
    points.append((until, model.position(until)))
    return points
