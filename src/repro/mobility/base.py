"""Trajectory segments and the mobility-model interface."""

from __future__ import annotations

import math
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.geo.grid import GridCoord, GridMap
from repro.geo.vector import Vec2

#: Tolerance used when nudging past a cell boundary so the post-crossing
#: cell lookup lands on the far side despite floating-point rounding.
_EDGE_EPS = 1e-9


class Segment(NamedTuple):
    """One linear leg of a trajectory.

    Position for ``t in [t0, t1]`` is ``p0 + v * (t - t0)``.  A pause is
    a segment with zero velocity.  ``t1 = math.inf`` marks a final
    segment (static models).
    """

    t0: float
    t1: float
    p0: Vec2
    v: Vec2

    def position(self, t: float) -> Vec2:
        dt = t - self.t0
        return Vec2(self.p0.x + self.v.x * dt, self.p0.y + self.v.y * dt)

    @property
    def is_pause(self) -> bool:
        return self.v.x == 0.0 and self.v.y == 0.0


class MobilityModel:
    """Base class: a lazily generated, append-only list of segments.

    Subclasses implement :meth:`_generate_next` to append the segment
    following the last one.  The base class memoizes segments and serves
    point queries with a local search (queries are strongly monotone in
    simulation time, so the common case is O(1)).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._segments: List[Segment] = []
        self._cursor = 0
        self._start_time = start_time
        # Hot-path caches.  Both are pure memoization: a trajectory is
        # an immutable function of time (segments are append-only), so
        # caching can never change a query result — only skip the
        # segment walk and the Vec2 allocation.  The wireless medium
        # queries every neighbor's position at the same ``sim.now``
        # several times per transmission, which makes ``position()``
        # one of the hottest calls of a whole simulation.
        self._active_seg: Optional[Segment] = None
        self._active_idx: int = 0
        self._memo_t: float = math.nan
        self._memo_pos: Optional[Vec2] = None

    # -- subclass API ---------------------------------------------------
    def _generate_next(self) -> Segment:
        """Produce the segment following the current last one."""
        raise NotImplementedError

    # -- queries --------------------------------------------------------
    def segment_at(self, t: float) -> Segment:
        """The segment covering time ``t`` (generated on demand).

        At an exact boundary ``t == seg.t1 == next.t0`` the *earlier*
        segment is returned (the cached fast path is strict on ``t0``
        to preserve exactly that convention).
        """
        seg = self._active_seg
        if seg is not None and seg.t0 < t <= seg.t1:
            self._cursor = self._active_idx
            return seg
        if t < self._start_time:
            raise ValueError(f"t={t} precedes trajectory start {self._start_time}")
        segs = self._segments
        if not segs:
            segs.append(self._generate_next())
        # Monotone cursor: rewind only if the caller went back in time.
        i = self._cursor
        if i >= len(segs) or segs[i].t0 > t:
            i = 0
        while segs[i].t1 < t:
            i += 1
            if i == len(segs):
                segs.append(self._generate_next())
        self._cursor = i
        seg = segs[i]
        self._active_seg = seg
        self._active_idx = i
        return seg

    def iter_segments(self, t: float) -> Iterator[Segment]:
        """Yield the segment at ``t`` and every following segment."""
        seg = self.segment_at(t)
        idx = self._cursor
        while True:
            yield self._segments[idx]
            idx += 1
            if idx == len(self._segments):
                if math.isinf(self._segments[-1].t1):
                    return
                self._segments.append(self._generate_next())

    def position(self, t: float) -> Vec2:
        # Memoized per query time: neighbor loops in the PHY ask every
        # radio for its position at the same ``sim.now`` repeatedly.
        # The active-segment fast path of ``segment_at`` is inlined —
        # this is the single most-called query of a simulation.
        if t == self._memo_t:
            return self._memo_pos  # type: ignore[return-value]
        seg = self._active_seg
        if seg is not None and seg.t0 < t <= seg.t1:
            self._cursor = self._active_idx
        else:
            seg = self.segment_at(t)
        dt = t - seg.t0
        p0 = seg.p0
        v = seg.v
        pos = Vec2(p0.x + v.x * dt, p0.y + v.y * dt)
        self._memo_t = t
        self._memo_pos = pos
        return pos

    def velocity(self, t: float) -> Vec2:
        return self.segment_at(t).v


def _segment_cell_exit(seg: Segment, t: float, grid: GridMap) -> Optional[float]:
    """Earliest time ``> t`` within ``seg`` at which the trajectory
    leaves the grid cell it occupies at ``t``; None if it stays in the
    cell for the rest of the segment."""
    pos = seg.position(t)
    cell = grid.cell_of(pos)
    x0, y0, x1, y1 = grid.cell_bounds(cell)
    best = math.inf
    if seg.v.x > 0:
        best = min(best, t + (x1 - pos.x) / seg.v.x)
    elif seg.v.x < 0:
        best = min(best, t + (x0 - pos.x) / seg.v.x)
    if seg.v.y > 0:
        best = min(best, t + (y1 - pos.y) / seg.v.y)
    elif seg.v.y < 0:
        best = min(best, t + (y0 - pos.y) / seg.v.y)
    if best > seg.t1 or math.isinf(best):
        return None
    return max(best, t)


def next_cell_crossing(
    model: MobilityModel,
    t: float,
    grid: GridMap,
    horizon: float = math.inf,
) -> Optional[Tuple[float, GridCoord]]:
    """Earliest time after ``t`` at which the node's grid cell changes,
    together with the new cell; None if no change before ``horizon``.

    Solved analytically per segment.  The returned time is the exact
    boundary-crossing instant; the new cell is sampled a hair past it so
    the lookup lands on the far side.
    """
    start_cell = grid.cell_of(model.position(t))
    cur = t
    for seg in model.iter_segments(t):
        if cur >= horizon:
            return None
        probe_end = min(seg.t1, horizon)
        while cur < probe_end:
            exit_t = _segment_cell_exit(seg, cur, grid)
            if exit_t is None or exit_t > horizon:
                break
            new_cell = grid.cell_of(seg.position(exit_t + _EDGE_EPS))
            if new_cell != start_cell:
                # Return a time strictly after t and strictly past the
                # boundary: at the exact crossing instant the floor
                # convention may still map to the old cell (negative
                # travel direction), which would re-arm a zero-delay
                # event forever.
                return (max(exit_t, t) + _EDGE_EPS, new_cell)
            # Grazed a boundary without changing cell (corner touch);
            # continue past it.
            cur = exit_t + _EDGE_EPS
        cur = max(cur, seg.t1)
        if math.isinf(seg.t1):
            return None
    return None
