"""Random waypoint mobility (the paper's §4 movement model).

A host repeatedly picks a destination uniformly in the area and a speed
uniformly in ``(min_speed, max_speed]``, travels there in a straight
line, pauses for ``pause_time``, and repeats.  The paper uses speed
ranges 0–1 m/s and 0–10 m/s with pause times 0–600 s.

A strictly-zero speed draw would stall a leg forever, so draws are
floored at ``speed_floor`` (1 mm/s) — the standard fix for the
random-waypoint harmonic-mean pathology, far below any speed that
affects results.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.geo.vector import Vec2
from repro.mobility.base import MobilityModel, Segment

SPEED_FLOOR = 1e-3


class RandomWaypoint(MobilityModel):
    """Random waypoint over ``[0, width] x [0, height]``."""

    def __init__(
        self,
        rng: random.Random,
        width: float,
        height: float,
        min_speed: float = 0.0,
        max_speed: float = 1.0,
        pause_time: float = 0.0,
        start: Optional[Vec2] = None,
        start_time: float = 0.0,
        speed_floor: float = SPEED_FLOOR,
    ) -> None:
        super().__init__(start_time)
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        if min_speed < 0 or min_speed > max_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.rng = rng
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self.speed_floor = speed_floor
        self._pos = start if start is not None else self._random_point()
        self._time = start_time
        self._pausing = False  # next generated segment alternates move/pause

    def _random_point(self) -> Vec2:
        return Vec2(
            self.rng.uniform(0.0, self.width),
            self.rng.uniform(0.0, self.height),
        )

    def _generate_next(self) -> Segment:
        if self._pausing and self.pause_time > 0.0:
            seg = Segment(
                self._time,
                self._time + self.pause_time,
                self._pos,
                Vec2(0.0, 0.0),
            )
            self._time = seg.t1
            self._pausing = False
            return seg
        self._pausing = True
        dest = self._random_point()
        speed = max(
            self.speed_floor, self.rng.uniform(self.min_speed, self.max_speed)
        )
        leg = dest - self._pos
        length = leg.norm()
        if length == 0.0:
            # Degenerate draw: emit a tiny pause and try again next call.
            seg = Segment(self._time, self._time + 1.0, self._pos, Vec2(0.0, 0.0))
            self._time = seg.t1
            return seg
        duration = length / speed
        seg = Segment(
            self._time,
            self._time + duration,
            self._pos,
            leg.scale(1.0 / length).scale(speed),
        )
        self._pos = dest
        self._time = seg.t1
        return seg
