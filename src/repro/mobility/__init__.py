"""Mobility models.

All models expose trajectories as piecewise-linear *segments*; positions,
velocities, grid-cell crossing times and dwell estimates are computed in
closed form from the segments — there is no per-timestep position loop
anywhere in the simulator.
"""

from repro.mobility.base import MobilityModel, Segment, next_cell_crossing
from repro.mobility.waypoint import RandomWaypoint
from repro.mobility.direction import RandomDirection
from repro.mobility.static import StaticPosition
from repro.mobility.trace import TraceMobility, record_trace
from repro.mobility.dwell import estimate_dwell_time

__all__ = [
    "MobilityModel",
    "Segment",
    "next_cell_crossing",
    "RandomWaypoint",
    "RandomDirection",
    "StaticPosition",
    "TraceMobility",
    "record_trace",
    "estimate_dwell_time",
]
