"""Grid dwell-time estimation (paper §3.2).

Before sleeping, a host sets its wake-up timer to "the estimated dwell
duration over which the host is expected to remain in its current
grid", computed from its *current* location and velocity (both read
from the GPS).  The host does not know its future waypoints, so the
estimate is a straight-line extrapolation of the current velocity; a
paused host (zero velocity) would dwell forever, so the estimate is
capped and the host re-checks on wake.
"""

from __future__ import annotations

import math

from repro.geo.grid import GridMap
from repro.geo.vector import Vec2


def straight_line_exit_time(
    pos: Vec2, vel: Vec2, grid: GridMap
) -> float:
    """Seconds until a point at ``pos`` moving at constant ``vel`` exits
    the grid cell containing ``pos``; ``inf`` if it never does."""
    x0, y0, x1, y1 = grid.cell_bounds(grid.cell_of(pos))
    out = math.inf
    if vel.x > 0:
        out = min(out, (x1 - pos.x) / vel.x)
    elif vel.x < 0:
        out = min(out, (x0 - pos.x) / vel.x)
    if vel.y > 0:
        out = min(out, (y1 - pos.y) / vel.y)
    elif vel.y < 0:
        out = min(out, (y0 - pos.y) / vel.y)
    return max(out, 0.0)


def estimate_dwell_time(
    pos: Vec2,
    vel: Vec2,
    grid: GridMap,
    min_dwell: float = 1.0,
    max_dwell: float = 60.0,
) -> float:
    """The sleep-timer duration per the paper's dwell heuristic.

    Clamped to ``[min_dwell, max_dwell]``: the lower bound avoids
    wake-up thrashing right at a boundary, the upper bound makes a
    paused host revalidate its gateway occasionally (and bounds the
    error of the straight-line extrapolation).
    """
    raw = straight_line_exit_time(pos, vel, grid)
    if math.isinf(raw):
        return max_dwell
    return min(max(raw, min_dwell), max_dwell)
