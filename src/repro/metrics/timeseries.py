"""A minimal sampled time series with the reductions the figures need."""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple


class TimeSeries:
    """Append-only ``(time, value)`` samples with monotone times."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("samples must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def at(self, t: float) -> float:
        """Most recent sample value at or before ``t`` (step-wise hold)."""
        if not self.times:
            raise ValueError("empty series")
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            raise ValueError(f"t={t} precedes first sample {self.times[0]}")
        return self.values[i]

    def last(self) -> float:
        if not self.values:
            raise ValueError("empty series")
        return self.values[-1]

    def first_time_below(self, threshold: float) -> Optional[float]:
        """Earliest sample time with value < threshold (None if never).

        Used for lifetime readings like "when did the alive fraction
        drop below 1.0 / 0.5 / 0".
        """
        for t, v in self:
            if v < threshold:
                return t
        return None

    def mean(self) -> float:
        if not self.values:
            raise ValueError("empty series")
        return sum(self.values) / len(self.values)

    def rows(self) -> Sequence[Tuple[float, float]]:
        return list(zip(self.times, self.values))
