"""Radio-mode time accounting: where does the energy actually go?

Attaches to radios and accumulates, per node and in aggregate, the
time spent in each radio mode (tx/rx/idle/sleep/off).  This is the
measurement behind the paper's whole argument: GRID dies because the
idle share is ~100%; ECGRID lives because sleep displaces idle.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, TYPE_CHECKING

from repro.des.core import Simulator
from repro.energy.profile import PowerProfile, RadioMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class ModeTracker:
    """Tracks mode dwell times for a set of nodes.

    Hooks each radio's ``on_mode_change``; call :meth:`finish` (or any
    reader) after the run to fold in the final open interval.
    """

    def __init__(self, sim: Simulator, nodes: Iterable["Node"]) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self._acc: Dict[int, Dict[RadioMode, float]] = {
            n.id: defaultdict(float) for n in self.nodes
        }
        self._open: Dict[int, tuple] = {}
        for node in self.nodes:
            self._open[node.id] = (sim.now, node.radio.mode)
            node.radio.on_mode_change = self._hook(node.id)

    def _hook(self, node_id: int):
        def on_change(_old: RadioMode, new: RadioMode) -> None:
            t0, mode = self._open[node_id]
            self._acc[node_id][mode] += self.sim.now - t0
            self._open[node_id] = (self.sim.now, new)

        return on_change

    def _settle(self) -> None:
        for node_id, (t0, mode) in self._open.items():
            if self.sim.now > t0:
                self._acc[node_id][mode] += self.sim.now - t0
                self._open[node_id] = (self.sim.now, mode)

    # ------------------------------------------------------------------
    def node_times(self, node_id: int) -> Dict[RadioMode, float]:
        """Seconds per mode for one node (up to the current time)."""
        self._settle()
        return dict(self._acc[node_id])

    def total_times(self) -> Dict[RadioMode, float]:
        """Aggregate seconds per mode over all tracked nodes."""
        self._settle()
        out: Dict[RadioMode, float] = defaultdict(float)
        for per_node in self._acc.values():
            for mode, t in per_node.items():
                out[mode] += t
        return dict(out)

    def mode_shares(self) -> Dict[str, float]:
        """Fraction of total node-time per mode (sums to 1)."""
        totals = self.total_times()
        whole = sum(totals.values())
        if whole <= 0.0:
            return {}
        return {m.value: t / whole for m, t in totals.items()}

    def energy_shares(self, profile: PowerProfile) -> Dict[str, float]:
        """Fraction of total consumed energy attributable to each mode."""
        totals = self.total_times()
        joules = {
            m: t * profile.total_power(m) for m, t in totals.items()
        }
        whole = sum(joules.values())
        if whole <= 0.0:
            return {}
        return {m.value: j / whole for m, j in joules.items()}
