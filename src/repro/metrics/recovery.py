"""Recovery-time metrics for fault-injection runs.

Two notions of "recovered", both measured from each disruptive fault's
onset (see :func:`repro.faults.plan.disruption_times`):

- **delivery recovery**: time until the *next* application packet is
  delivered anywhere in the network — the end-to-end service is
  demonstrably alive again;
- **invariant recovery**: time until the next violation-free
  :class:`~repro.experiments.validate.InvariantChecker` sample — the
  single-gateway invariant (and friends) is demonstrably restored.

Both are right-censored at the horizon: a fault the network never
recovers from contributes the remaining horizon and bumps the
``*_unrecovered`` count, so "never came back" reads as slow, not as
missing data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import FaultPlan, disruption_times

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.validate import InvariantReport
    from repro.metrics.collectors import PacketLog


def _mean(vals: List[float]) -> float:
    return sum(vals) / len(vals)


def recovery_summary(
    plan: FaultPlan,
    packet_log: "PacketLog",
    horizon_s: float,
    invariant_report: Optional["InvariantReport"] = None,
) -> Dict[str, float]:
    """Reduce one faulted run to its recovery scalars.

    Returns an empty dict for a plan with no disruptive events (so
    fault-free results stay byte-identical to the pre-fault schema).
    """
    onsets = list(disruption_times(plan))
    if not onsets:
        return {}
    out: Dict[str, float] = {"faults_injected": float(len(onsets))}

    delivered = sorted(packet_log.delivered_at.values())
    lags: List[float] = []
    unrecovered = 0
    for t in onsets:
        nxt = next((d for d in delivered if d >= t), None)
        if nxt is None:
            unrecovered += 1
            lags.append(horizon_s - t)
        else:
            lags.append(nxt - t)
    out["mean_delivery_recovery_s"] = _mean(lags)
    out["max_delivery_recovery_s"] = max(lags)
    out["delivery_unrecovered"] = float(unrecovered)

    if invariant_report is not None and invariant_report.samples > 0:
        ilags: List[float] = []
        iunrecovered = 0
        for t in onsets:
            clean = invariant_report.first_clean_at_or_after(t)
            if clean is None:
                iunrecovered += 1
                ilags.append(horizon_s - t)
            else:
                ilags.append(clean - t)
        out["mean_invariant_recovery_s"] = _mean(ilags)
        out["max_invariant_recovery_s"] = max(ilags)
        out["invariant_unrecovered"] = float(iunrecovered)
    return out
