"""A promiscuous channel sniffer — tcpdump for the simulated medium.

Wraps ``Medium.transmit`` and records one entry per frame put on the
air: time, sender, link destination, frame kind, payload type and
wire size.  No protocol cooperation needed; useful for debugging
("what actually went over the air during this election?") and for
tests that assert on traffic patterns.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, TYPE_CHECKING

from repro.mac.frames import AckFrame, Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.medium import Medium


@dataclass(frozen=True)
class SniffedFrame:
    time: float
    sender: int
    dst: int                 # link-layer destination (-1 = broadcast)
    kind: str                # "ack" or the payload message class name
    wire_bytes: int

    def describe(self) -> str:
        target = "*" if self.dst == -1 else str(self.dst)
        return (f"{self.time:10.4f}  {self.sender:3d} -> {target:>3s}  "
                f"{self.kind:<14s} {self.wire_bytes:4d}B")


class Sniffer:
    """Attach with ``Sniffer(medium)``; detach with :meth:`detach`."""

    def __init__(self, medium: "Medium", max_frames: int = 100_000) -> None:
        self.medium = medium
        self.frames: Deque[SniffedFrame] = deque(maxlen=max_frames)
        self._orig_transmit = medium.transmit
        medium.transmit = self._tap  # type: ignore[method-assign]

    def _tap(self, sender, payload, wire_bytes):
        if isinstance(payload, AckFrame):
            dst, kind = payload.dst, "ack"
        elif isinstance(payload, Frame):
            dst = payload.dst
            kind = type(payload.message).__name__
        else:
            dst, kind = -1, type(payload).__name__
        self.frames.append(
            SniffedFrame(
                self.medium.sim.now, sender.node_id, dst, kind, wire_bytes
            )
        )
        return self._orig_transmit(sender, payload, wire_bytes)

    def detach(self) -> None:
        self.medium.transmit = self._orig_transmit  # type: ignore

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[SniffedFrame]:
        return [f for f in self.frames if f.kind == kind]

    def between(self, t0: float, t1: float) -> List[SniffedFrame]:
        return [f for f in self.frames if t0 <= f.time <= t1]

    def kind_counts(self) -> Counter:
        return Counter(f.kind for f in self.frames)

    def bytes_by_kind(self) -> Counter:
        out: Counter = Counter()
        for f in self.frames:
            out[f.kind] += f.wire_bytes
        return out

    def dump(self, frames: Optional[Iterable[SniffedFrame]] = None) -> str:
        rows = frames if frames is not None else self.frames
        return "\n".join(f.describe() for f in rows)
