"""Measurement: packet bookkeeping, energy sampling, event counters."""

from repro.metrics.timeseries import TimeSeries
from repro.metrics.collectors import Counters, EnergySampler, PacketLog
from repro.metrics.modes import ModeTracker
from repro.metrics.sniffer import Sniffer, SniffedFrame

__all__ = ["TimeSeries", "PacketLog", "EnergySampler", "Counters", "ModeTracker", "Sniffer", "SniffedFrame"]
