"""Partition-quality evaluator: score a run's gateway partition.

A gateway election policy induces a *partition history*: which host
covered which cell, when.  This module reduces the ``gateway`` trace
stream (plus ``fault`` events, when present — a crashed gateway's
tenure ends at the crash) to the quality scores the election-faceoff
figure ranks policies by:

- **load fairness**: coefficient of variation and Gini index of total
  gateway time per serving host — a fair policy spreads the beaconing
  and forwarding drain instead of burning out central hosts;
- **handoff churn**: tenure starts per covered cell per 100 s — cheap
  elections are worthless if the gateway role thrashes (every handoff
  costs RETIRE/TablesTransfer traffic and a paging-coverage wobble);
- **coverage gaps**: the fraction of covered-cell time with *no*
  gateway (ECGRID's wakeup guarantee is broken exactly then), plus the
  gap count and mean/max gap lengths.

Network lifetime, the fourth axis the faceoff reports, comes from the
standard :class:`~repro.experiments.runner.ExperimentResult` fields —
it needs no trace.  :func:`partition_quality` is what
:func:`~repro.experiments.runner.run_experiment` calls when a config
sets ``evaluate_partition``; the flat dict lands in
``ExperimentResult.partition`` and rides the result cache.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.report import Cell, gateway_tenures, no_gateway_intervals
from repro.obs.trace import TraceEvent


@dataclass(frozen=True)
class PartitionReport:
    """Quality scores of one run's gateway partition history."""

    #: Individual tenure intervals and distinct hosts that ever served.
    n_tenures: int
    n_gateways: int
    #: Load fairness over per-host total gateway time.
    load_cv: float
    load_gini: float
    #: Tenure starts per covered cell per 100 s.
    churn_per_100s: float
    #: No-gateway time as a fraction of covered-cell time.
    gap_fraction: float
    gap_count: int
    mean_gap_s: float
    max_gap_s: float
    covered_cells: int

    def to_dict(self) -> Dict[str, float]:
        """Flat, JSON-ready floats (the result-record representation)."""
        return {k: float(v) for k, v in asdict(self).items()}


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population stddev over mean; 0 for empty or zero-mean samples."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(var) / mean


def gini(values: Sequence[float]) -> float:
    """Gini index in [0, 1): 0 = perfectly even shares."""
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    weighted = sum((2 * (i + 1) - n - 1) * v for i, v in enumerate(ordered))
    return weighted / (n * total)


def partition_quality(
    events: Iterable[TraceEvent],
    horizon: float,
    cells: Optional[Iterable[Cell]] = None,
) -> PartitionReport:
    """Score a run's partition from its trace events.

    ``events`` may mix categories (``gateway`` and ``fault`` streams
    are merged by time here), ``horizon`` is the simulated duration,
    and ``cells`` optionally widens the coverage baseline beyond the
    cells that ever had a gateway (see
    :func:`repro.obs.report.no_gateway_intervals`).
    """
    # Streams arrive per category; tenure reconstruction needs one
    # time-ordered view.  The sort is stable, so the emission order of
    # same-timestamp events within a stream survives (a death demote
    # still precedes its fault.crash).
    ordered = sorted(events, key=lambda ev: ev.t)
    tenures = gateway_tenures(ordered, horizon)
    gaps = no_gateway_intervals(ordered, horizon, cells)

    totals: Dict[int, float] = {}
    for node, _cell, t0, t1 in tenures:
        totals[node] = totals.get(node, 0.0) + (t1 - t0)
    loads = list(totals.values())

    covered = len(gaps)
    gap_lengths: List[float] = [
        t1 - t0 for spans in gaps.values() for t0, t1 in spans
    ]
    denom = covered * horizon
    return PartitionReport(
        n_tenures=len(tenures),
        n_gateways=len(totals),
        load_cv=coefficient_of_variation(loads),
        load_gini=gini(loads),
        churn_per_100s=(
            len(tenures) / covered / horizon * 100.0 if denom else 0.0
        ),
        gap_fraction=sum(gap_lengths) / denom if denom else 0.0,
        gap_count=len(gap_lengths),
        mean_gap_s=(
            sum(gap_lengths) / len(gap_lengths) if gap_lengths else 0.0
        ),
        max_gap_s=max(gap_lengths, default=0.0),
        covered_cells=covered,
    )
