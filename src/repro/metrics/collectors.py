"""Collectors: packet delivery accounting, energy sampling, counters."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.des.core import Simulator
from repro.net.packet import DataPacket
from repro.obs.counters import CounterRegistry
from repro.obs.trace import NULL_TRACER


class Counters(CounterRegistry):
    """Named event counters shared by protocol instances.

    Protocols increment e.g. ``hello_sent``, ``gateway_elections``,
    ``pages_sent`` so experiments can report protocol overhead.  The
    counter semantics live in :class:`~repro.obs.counters
    .CounterRegistry` (which adds gauges, histograms and timestamped
    snapshots on top); this subclass exists so the network-wide tally
    store keeps its established name and import path.
    """


class PacketLog:
    """End-to-end bookkeeping of every application packet.

    Delivery rate and latency are computed exactly as the paper defines
    them (§4C): rate = received / issued; latency = mean elapsed time
    between transmission and (first) reception.
    """

    #: Trace sink (``packet.*`` events); the network swaps in a live
    #: tracer via :meth:`Network.attach_tracer`.
    tracer = NULL_TRACER

    def __init__(self) -> None:
        self.sent: Dict[int, DataPacket] = {}
        self.delivered_at: Dict[int, float] = {}
        #: uid -> (time, reason) of the first protocol-level discard.
        self.dropped: Dict[int, Tuple[float, str]] = {}
        self.latencies: List[float] = []
        self.hop_counts: List[int] = []
        self.duplicates = 0

    def on_sent(self, packet: DataPacket) -> None:
        self.sent[packet.uid] = packet
        tr = self.tracer
        if tr.packet:
            tr.emit(
                "packet.sent", node=packet.src,
                uid=packet.uid, dst=packet.dst,
            )

    def on_delivered(self, packet: DataPacket, now: float) -> None:
        if packet.uid in self.delivered_at:
            self.duplicates += 1
            return
        self.delivered_at[packet.uid] = now
        # A copy that got through outranks an earlier drop of a sibling
        # copy: the packet's end-to-end fate is "delivered".
        self.dropped.pop(packet.uid, None)
        origin = self.sent.get(packet.uid)
        created = origin.created_at if origin is not None else packet.created_at
        self.latencies.append(now - created)
        self.hop_counts.append(packet.hops)
        tr = self.tracer
        if tr.packet:
            tr.emit(
                "packet.delivered", node=packet.dst, t=now,
                uid=packet.uid, latency_s=now - created, hops=packet.hops,
            )

    def on_dropped(self, packet: DataPacket, now: float, reason: str) -> None:
        """A protocol discarded ``packet`` (buffer overflow, failed
        discovery, unreachable host, host death ...).  First reason
        wins; a packet already delivered is never counted as dropped,
        so ``delivered + dropped <= sent`` always holds per uid."""
        if packet.uid in self.delivered_at or packet.uid in self.dropped:
            return
        self.dropped[packet.uid] = (now, reason)
        tr = self.tracer
        if tr.packet:
            tr.emit(
                "packet.dropped", t=now,
                uid=packet.uid, reason=reason,
            )

    # ------------------------------------------------------------------
    @property
    def sent_count(self) -> int:
        return len(self.sent)

    @property
    def delivered_count(self) -> int:
        return len(self.delivered_at)

    @property
    def dropped_count(self) -> int:
        return len(self.dropped)

    def drop_reasons(self) -> Dict[str, int]:
        """Drops per reason (sorted by reason for stable reporting)."""
        out: Dict[str, int] = {}
        for _, reason in self.dropped.values():
            out[reason] = out.get(reason, 0) + 1
        return dict(sorted(out.items()))

    def delivery_rate(self) -> float:
        if not self.sent:
            return 1.0
        return self.delivered_count / self.sent_count

    def delivery_rate_until(self, t: float) -> float:
        """Delivery rate over packets issued at or before ``t``.

        The paper's §4C delivery/latency figures are measured up to
        GRID's death (590 s); packets issued later — e.g. to hosts
        that have since died — would distort the comparison.
        """
        issued = [p for p in self.sent.values() if p.created_at <= t]
        if not issued:
            return 1.0
        delivered = sum(1 for p in issued if p.uid in self.delivered_at)
        return delivered / len(issued)

    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        data = sorted(self.latencies)
        idx = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
        return data[idx]

    def mean_hops(self) -> float:
        if not self.hop_counts:
            return 0.0
        return sum(self.hop_counts) / len(self.hop_counts)


class EnergySampler:
    """Samples the two energy figures-of-merit of the paper.

    - *fraction of alive hosts* (Figs. 4 and 8): alive finite-energy
      hosts / total finite-energy hosts;
    - *aen*, mean normalized energy consumption per host (Fig. 5, eq. 2):
      ``(E0 - Et) / (n * e0)`` where E0/Et are total initial/remaining
      energy over the n finite-energy hosts.

    Infinite-energy endpoints (GAF Model 1) are excluded, exactly as the
    paper excludes them.  Samples run at event priority 100 so a sample
    at time t observes all state changes at t.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Iterable,
        interval_s: float = 10.0,
    ) -> None:
        from repro.metrics.timeseries import TimeSeries

        self.sim = sim
        self.nodes = [n for n in nodes if not n.battery.infinite]
        self.interval_s = interval_s
        self.alive_fraction = TimeSeries("alive_fraction")
        self.aen = TimeSeries("aen")
        self.first_death_time: Optional[float] = None
        self.all_dead_time: Optional[float] = None
        self._initial_total = sum(n.battery.capacity_j for n in self.nodes)

    def start(self) -> None:
        self.sample()
        self._schedule()

    def _schedule(self) -> None:
        self.sim.after(self.interval_s, self._tick, priority=100, wheel=True)

    def _tick(self) -> None:
        self.sample()
        self._schedule()

    def sample(self) -> None:
        now = self.sim.now
        if not self.nodes:
            return
        alive = sum(1 for n in self.nodes if n.alive)
        self.alive_fraction.append(now, alive / len(self.nodes))
        remaining = sum(n.battery.remaining_at(now) for n in self.nodes)
        self.aen.append(now, (self._initial_total - remaining) / self._initial_total)

    def note_death(self, now: float) -> None:
        """Called by the network on each node death (exact times)."""
        if self.first_death_time is None:
            self.first_death_time = now
        if all(not n.alive for n in self.nodes):
            self.all_dead_time = now
