"""Gateway election rules (paper §3, "Gateway election rules") and the
pluggable policy layer on top of them.

The paper's priority order:

1. higher battery-level band (upper > boundary > lower);
2. among the highest band, smallest distance to the grid center
   (a central host likely stays in the grid longest);
3. smallest host ID as the final tiebreak.

The GRID baseline elects purely by rule 2+3 (it is not energy-aware);
``energy_aware=False`` reproduces that.

An :class:`ElectionPolicy` swaps the *sort key* while leaving every
other piece of the distributed election untouched (HELLO beaconing,
the listening window, conflict resolution, the strictly-higher-band
takeover rule of §3.2).  A policy key must be a total order over
candidates — distinct hosts must never compare equal, or the
distributed election stops converging — so every built-in key ends in
``-id``.  The registry holds the paper rule (``"paper"``), GRID's
non-energy-aware rule (``"grid"``), and three contributed policies:

- ``"dwell"``: replace the distance proxy with the host's advertised
  straight-line grid dwell estimate (§3.2's heuristic, normally used
  for sleep timers) — prefer the host whose current mobility segment
  keeps it in-cell longest;
- ``"load"``: penalize hosts that recently served as gateway, spreading
  the gateway duty (and its energy drain) across the grid's members;
- ``"random"``: a deterministic pseudo-random tiebreak control that
  discards the distance rule, isolating how much the paper's careful
  tiebreaks actually buy.

Policies whose keys read the advertised context fields declare
``needs_context = True``; only then do hosts compute and beacon the
extra fields, so default-policy runs stay bit-for-bit identical to the
pre-policy kernel (the golden-trace harness pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.energy.profile import EnergyLevel


@dataclass(frozen=True)
class Candidate:
    """One contender, as advertised in its HELLO message.

    ``dwell_s`` and ``tenure_s`` are optional election context: the
    advertiser's straight-line grid dwell estimate and its cumulative
    recent gateway tenure.  They stay ``None`` (and off the wire)
    unless the run's policy declares ``needs_context``.
    """

    id: int
    level: EnergyLevel
    dist: float
    dwell_s: Optional[float] = None
    tenure_s: Optional[float] = None

    def key(self, energy_aware: bool = True):
        """The paper's sort key: maximal key wins the election.

        ``-dist`` prefers hosts nearer the grid center; ``-id`` makes
        the smallest ID win the final tiebreak.
        """
        level = int(self.level) if energy_aware else 0
        return (level, -self.dist, -self.id)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class ElectionPolicy:
    """A gateway-election ranking: ``key()`` maps a candidate to a
    comparable tuple; the maximal tuple wins.

    Subclasses set ``name`` (the registry / config / CLI identifier)
    and ``needs_context`` (True when the key reads ``dwell_s`` /
    ``tenure_s``, which makes hosts compute and advertise them).
    Keys must be deterministic functions of the candidate alone —
    every host ranking the same advertised set must agree — and a
    total order over distinct host IDs.
    """

    name = "base"
    needs_context = False

    def key(self, cand: Candidate, energy_aware: bool = True) -> Tuple:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ElectionPolicy {self.name}>"


class PaperPolicy(ElectionPolicy):
    """The paper's rules 1-3, exactly :meth:`Candidate.key`."""

    name = "paper"

    def key(self, cand: Candidate, energy_aware: bool = True) -> Tuple:
        return cand.key(energy_aware)


class GridPolicy(ElectionPolicy):
    """GRID's non-energy-aware election (rules 2+3 only), available to
    ECGRID as an ablation: battery bands never enter the key."""

    name = "grid"

    def key(self, cand: Candidate, energy_aware: bool = True) -> Tuple:
        return cand.key(False)


class DwellPolicy(ElectionPolicy):
    """Prefer the host whose current mobility segment keeps it in-cell
    longest.

    Distance-to-center is the paper's *proxy* for expected dwell; this
    policy uses the advertised straight-line dwell estimate directly,
    bucketed so jittery GPS extrapolations don't reorder near-ties,
    then falls back to the paper's distance + ID rules.  Energy bands
    stay the primary criterion (it is still ECGRID).
    """

    name = "dwell"
    needs_context = True
    #: Bucket width: dwell differences below this are noise, not signal.
    quantum_s = 5.0

    def key(self, cand: Candidate, energy_aware: bool = True) -> Tuple:
        level = int(cand.level) if energy_aware else 0
        dwell = cand.dwell_s if cand.dwell_s is not None else 0.0
        return (level, int(dwell // self.quantum_s), -cand.dist, -cand.id)


class LoadPolicy(ElectionPolicy):
    """Penalize recent gateway tenure: among the best band, the host
    that has served the least total gateway time wins, spreading the
    beaconing/forwarding drain across the grid's members.  Tenure is
    bucketed so sub-bucket differences defer to the paper's rules.
    """

    name = "load"
    needs_context = True
    quantum_s = 10.0

    def key(self, cand: Candidate, energy_aware: bool = True) -> Tuple:
        level = int(cand.level) if energy_aware else 0
        tenure = cand.tenure_s if cand.tenure_s is not None else 0.0
        return (level, -int(tenure // self.quantum_s), -cand.dist, -cand.id)


class RandomPolicy(ElectionPolicy):
    """Control arm: replace rules 2+3 with a pseudo-random tiebreak.

    The "randomness" is a fixed multiplicative hash of the host ID
    (Knuth's 2654435761), so every host computes the same winner from
    the same candidate set and no RNG stream is consumed — drawing real
    randomness here would desynchronize the hosts' views *and* perturb
    the simulation's RNG accounting.
    """

    name = "random"

    def key(self, cand: Candidate, energy_aware: bool = True) -> Tuple:
        level = int(cand.level) if energy_aware else 0
        mix = ((cand.id + 1) * 2654435761) % (1 << 32)
        return (level, mix, -cand.id)


#: Registered policies by name ("paper" is the default everywhere).
ELECTION_POLICIES: Dict[str, ElectionPolicy] = {
    p.name: p
    for p in (
        PaperPolicy(),
        GridPolicy(),
        DwellPolicy(),
        LoadPolicy(),
        RandomPolicy(),
    )
}

DEFAULT_POLICY_NAME = "paper"


def get_policy(name: str) -> ElectionPolicy:
    """The registered policy instance, or ``ValueError`` listing choices."""
    try:
        return ELECTION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown election policy {name!r}; "
            f"choose from {sorted(ELECTION_POLICIES)}"
        ) from None


# ----------------------------------------------------------------------
# The election itself
# ----------------------------------------------------------------------
def elect(
    candidates: Iterable[Candidate],
    energy_aware: bool = True,
    policy: Optional[ElectionPolicy] = None,
) -> Optional[Candidate]:
    """The winner under ``policy`` (default: the paper's rules), or
    None with no candidates.

    Deterministic: every host evaluating the same candidate set picks
    the same winner, which is what makes the distributed election
    converge without a coordinator.
    """
    best: Optional[Candidate] = None
    best_key = None
    for cand in candidates:
        k = (
            cand.key(energy_aware)
            if policy is None
            else policy.key(cand, energy_aware)
        )
        if best_key is None or k > best_key:
            best = cand
            best_key = k
    return best


def beats(
    a: Candidate,
    b: Candidate,
    energy_aware: bool = True,
    policy: Optional[ElectionPolicy] = None,
) -> bool:
    """True if candidate ``a`` outranks ``b`` under the election rules."""
    if policy is None:
        return a.key(energy_aware) > b.key(energy_aware)
    return policy.key(a, energy_aware) > policy.key(b, energy_aware)
