"""Gateway election rules (paper §3, "Gateway election rules").

Priority order:

1. higher battery-level band (upper > boundary > lower);
2. among the highest band, smallest distance to the grid center
   (a central host likely stays in the grid longest);
3. smallest host ID as the final tiebreak.

The GRID baseline elects purely by rule 2+3 (it is not energy-aware);
``energy_aware=False`` reproduces that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.energy.profile import EnergyLevel


@dataclass(frozen=True)
class Candidate:
    """One contender, as advertised in its HELLO message."""

    id: int
    level: EnergyLevel
    dist: float

    def key(self, energy_aware: bool = True):
        """Sort key: maximal key wins the election.

        ``-dist`` prefers hosts nearer the grid center; ``-id`` makes
        the smallest ID win the final tiebreak.
        """
        level = int(self.level) if energy_aware else 0
        return (level, -self.dist, -self.id)


def elect(
    candidates: Iterable[Candidate], energy_aware: bool = True
) -> Optional[Candidate]:
    """The winner under the paper's rules, or None with no candidates.

    Deterministic: every host evaluating the same candidate set picks
    the same winner, which is what makes the distributed election
    converge without a coordinator.
    """
    best: Optional[Candidate] = None
    best_key = None
    for cand in candidates:
        k = cand.key(energy_aware)
        if best_key is None or k > best_key:
            best = cand
            best_key = k
    return best


def beats(a: Candidate, b: Candidate, energy_aware: bool = True) -> bool:
    """True if candidate ``a`` outranks ``b`` under the election rules."""
    return a.key(energy_aware) > b.key(energy_aware)
