"""Shared machinery of the grid protocol family (GRID and ECGRID).

This class implements everything §3 of the paper describes that is not
specific to sleeping: HELLO beaconing, the distributed gateway election
(rules 1–3 and the election algorithm of §3.1), gateway maintenance on
mobility (§3.2: newcomer handling, takeover, RETIRE handoff, LEAVE
notifications, no-gateway detection), and neighbor-gateway tracking.
Route discovery and data forwarding live in
:class:`repro.core.routing.GridRoutingMixin`; the ECGRID energy
machinery (sleep/wake, RAS paging, ACQ, load balancing) lives in
:class:`repro.core.protocol.EcGridProtocol`.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.core.election import Candidate, beats, elect, get_policy
from repro.core.messages import (
    Acq,
    DataEnvelope,
    Hello,
    Leave,
    Retire,
    Rerr,
    Rrep,
    Rreq,
    SleepNotify,
    TablesTransfer,
)
from repro.core.tables import HostTable, RoutingTable
from repro.des.timer import PeriodicTimer, Timer
from repro.geo.grid import GridCoord
from repro.metrics.collectors import Counters
from repro.net.packet import BROADCAST, Message
from repro.protocols.base import ProtocolParams, RoutingProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Role(enum.Enum):
    GATEWAY = "gateway"
    ACTIVE = "active"
    SLEEPING = "sleeping"
    DEAD = "dead"


class GridProtocolBase(RoutingProtocol):
    """Common behaviour of GRID-family protocols.

    Subclass knobs:

    - ``energy_aware``: election rule 1 considers battery bands (ECGRID)
      or not (GRID elects purely by distance-to-center + ID).
    - ``uses_ras``: whether RETIRE handoffs first wake the grid with the
      RAS broadcast sequence (pointless when nobody sleeps).
    """

    name = "grid-base"
    energy_aware = True
    uses_ras = True

    def __init__(
        self,
        node: "Node",
        params: ProtocolParams,
        counters: Optional[Counters] = None,
    ) -> None:
        super().__init__(node, params)
        self.counters = counters if counters is not None else Counters()
        self.rng = node.sim.rng.stream(f"proto-{node.id}")
        #: The gateway-election ranking this run uses (swaps only the
        #: sort key; the election machinery itself is policy-blind).
        self.election_policy = get_policy(params.election_policy)
        # Cumulative gateway-tenure bookkeeping (always on: pure local
        # arithmetic, no events or RNG, so the default path stays
        # bit-for-bit).  The load policy advertises it.
        self._tenure_started: Optional[float] = None
        self._tenure_total = 0.0

        self.role = Role.ACTIVE
        self.my_cell: GridCoord = node.cell()
        self.my_gateway: Optional[int] = None
        self.my_gateway_level = None

        self.routing = RoutingTable()
        self.hosts = HostTable()
        #: cell -> (gateway id, last heard time)
        self.neighbor_gateways: Dict[GridCoord, Tuple[int, float]] = {}
        #: own-cell peers: id -> (Candidate, last heard time)
        self.cell_peers: Dict[int, Tuple[Candidate, float]] = {}

        self.hello_timer = PeriodicTimer(
            node.sim,
            self._hello_tick,
            params.hello_period_s,
            jitter=lambda: self.rng.uniform(
                -params.hello_jitter_s, params.hello_jitter_s
            ),
        )
        #: Waits for a gateway HELLO; expiry = no-gateway event (§3.2).
        self.watch_timer = Timer(node.sim, self._on_watch_expired)
        self._last_hello_sent = -1e9
        self._retiring = False
        self._inherited_host_table = False

        #: Exact-type message dispatch: ``type(msg) -> (handler,
        #: wants_sender_id)``.  Bound here so subclass handler overrides
        #: are captured; a type not in the table (someone dispatching a
        #: message subclass) falls back to the isinstance chain in
        #: :meth:`on_message`, which remains the semantic reference.
        self._dispatch = {
            Hello: (self._on_hello, False),
            DataEnvelope: (self._on_envelope, True),
            Rreq: (self._on_rreq, False),
            Rrep: (self._on_rrep, False),
            Rerr: (self._on_rerr, False),
            Retire: (self._on_retire, False),
            TablesTransfer: (self._on_tables_transfer, False),
            Leave: (self._on_leave, False),
            SleepNotify: (self._on_sleep_notify, False),
            Acq: (self._on_acq, True),
        }

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.node.sim

    @property
    def now(self) -> float:
        return self.node.sim.now

    @property
    def is_gateway(self) -> bool:
        return self.role is Role.GATEWAY

    def self_candidate(self) -> Candidate:
        if not self.election_policy.needs_context:
            return Candidate(
                self.node.id, self.node.energy_level(),
                self.node.dist_to_center(),
            )
        return Candidate(
            self.node.id,
            self.node.energy_level(),
            self.node.dist_to_center(),
            dwell_s=self._dwell_estimate(),
            tenure_s=self.gateway_tenure_s(),
        )

    def _dwell_estimate(self) -> float:
        """§3.2's straight-line dwell heuristic, advertised as election
        context under the dwell policy."""
        from repro.mobility.dwell import estimate_dwell_time

        return estimate_dwell_time(
            self.node.position(),
            self.node.velocity(),
            self.node.grid,
            self.params.min_dwell_s,
            self.params.max_dwell_s,
        )

    def gateway_tenure_s(self) -> float:
        """Total time this host has served as gateway so far."""
        total = self._tenure_total
        if self._tenure_started is not None:
            total += self.now - self._tenure_started
        return total

    def _close_tenure(self) -> None:
        if self._tenure_started is not None:
            self._tenure_total += self.now - self._tenure_started
            self._tenure_started = None

    def _peer_fresh_cutoff(self) -> float:
        return self.now - self.params.hello_period_s * self.params.hello_loss_tolerance

    def fresh_peers(self):
        cutoff = self._peer_fresh_cutoff()
        return [c for c, t in self.cell_peers.values() if t >= cutoff]

    # ------------------------------------------------------------------
    # Send helpers
    # ------------------------------------------------------------------
    def _broadcast(self, message: Message) -> None:
        self.node.mac.send(message, BROADCAST)

    def _unicast(self, message: Message, dst: int, on_ok=None, on_fail=None) -> None:
        self.node.mac.send(message, dst, on_ok=on_ok, on_fail=on_fail)

    def _hello_message(self, gflag: bool) -> Hello:
        """Our beacon, carrying election context only when the run's
        policy needs it (``self_candidate`` gates the computation)."""
        me = self.self_candidate()
        return Hello(
            id=self.node.id,
            cell=self.my_cell,
            gflag=gflag,
            level=me.level,
            dist=me.dist,
            dwell_s=me.dwell_s,
            tenure_s=me.tenure_s,
        )

    def _send_hello(self) -> None:
        self._last_hello_sent = self.now
        self.counters.inc("hello_sent")
        self._broadcast(self._hello_message(self.is_gateway))

    def _hello_soon(self, max_jitter: float = 0.1) -> None:
        """An extra, jittered HELLO outside the periodic schedule
        (election rounds, newcomer announcements)."""
        self.sim.after(self.rng.uniform(0.0, max_jitter), self._hello_now)

    def _hello_now(self) -> None:
        if self.role not in (Role.ACTIVE, Role.GATEWAY):
            return
        # Several _hello_soon() requests can be queued before the first
        # fires; suppress the pile-up at fire time.
        if self.now - self._last_hello_sent < 0.1 * self.params.hello_period_s:
            return
        self._send_hello()

    def _hello_response(self) -> None:
        """Gateway answers a newcomer's HELLO (rate limited so a burst
        of arrivals doesn't cause a beacon storm)."""
        if self.now - self._last_hello_sent >= 0.25 * self.params.hello_period_s:
            self._hello_soon(0.05)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.my_cell = self.node.cell()
        self.role = Role.ACTIVE
        # All hosts beacon during the initial HELLO period, then decide.
        self.hello_timer.start(
            initial_delay=self.rng.uniform(0.0, 0.8 * self.params.hello_period_s)
        )
        self.watch_timer.start(
            self.params.hello_period_s * (1.0 + self.rng.uniform(0.05, 0.25))
        )

    def on_death(self) -> None:
        tr = self.node.tracer
        if tr.gateway and self.role is Role.GATEWAY:
            # Close the gateway tenure before the role flips so trace
            # consumers (auditors, tenure timelines) see the handover.
            tr.emit(
                "gateway.demote", node=self.node.id, cell=self.my_cell,
                reason="death",
            )
        self._close_tenure()
        self.role = Role.DEAD
        self.hello_timer.stop()
        self.watch_timer.cancel()
        self._routing_on_death()

    def _routing_on_death(self) -> None:
        """Overridden by the routing mixin to drop buffered packets."""

    def _hello_tick(self) -> None:
        if self.role not in (Role.ACTIVE, Role.GATEWAY):
            self.hello_timer.stop()
            return
        self._gateway_periodic_checks()
        self._send_hello()

    def _gateway_periodic_checks(self) -> None:
        """Hook: ECGRID's pre-death retirement check runs here."""

    # ------------------------------------------------------------------
    # Election
    # ------------------------------------------------------------------
    def _decide_election(self) -> None:
        """Apply the gateway election rules over self + fresh peers."""
        if self.role is not Role.ACTIVE:
            return
        candidates = self.fresh_peers()
        candidates.append(self.self_candidate())
        winner = elect(candidates, self.energy_aware, self.election_policy)
        if winner is not None and winner.id == self.node.id:
            self.become_gateway()
        else:
            # Wait for the winner's gflag HELLO; if it never comes
            # (winner moved/died), the watch re-runs the election.
            self.watch_timer.start(
                self.params.hello_period_s * (1.0 + self.rng.uniform(0.0, 0.3))
            )

    def _on_watch_expired(self) -> None:
        """No gateway HELLO within tolerance: the paper's no-gateway
        event.  With no live peers we are alone and declare ourselves;
        otherwise we re-run the election on what we have heard."""
        if self.role is not Role.ACTIVE:
            return
        self.counters.inc("no_gateway_events")
        if not self.fresh_peers():
            self.become_gateway()
        else:
            self._hello_soon()
            self._decide_election()

    def become_gateway(
        self,
        rtab_snapshot=None,
        htab_snapshot=None,
    ) -> None:
        if self.role is Role.DEAD:
            return
        if self._tenure_started is None:
            self._tenure_started = self.now
        self.role = Role.GATEWAY
        self.my_gateway = self.node.id
        self.my_gateway_level = self.node.energy_level()
        self.watch_timer.cancel()
        if rtab_snapshot:
            self.routing.load_snapshot(
                rtab_snapshot, self.now, self.params.route_lifetime_s
            )
        if htab_snapshot:
            self.hosts.load_snapshot(htab_snapshot)
        self._inherited_host_table = bool(htab_snapshot)
        # Seed the host table with recently heard grid-mates.
        for cand in self.fresh_peers():
            self.hosts.mark_active(cand.id)
        self.hosts.mark_active(self.node.id)
        self.counters.inc("gateway_elections")
        tr = self.node.tracer
        if tr.gateway:
            tr.emit(
                "gateway.elect", node=self.node.id, cell=self.my_cell,
                inherited=self._inherited_host_table,
            )
        if not self.hello_timer.running:
            self.hello_timer.start(initial_delay=self.params.hello_period_s)
        # Declare immediately: informs grid members and the neighbors.
        self._send_hello()
        self._on_became_gateway()

    def _on_became_gateway(self) -> None:
        """Hook for subclasses (ECGRID flushes pending work)."""

    def demote_to_active(self) -> None:
        """Stop being the gateway (lost a conflict or retired)."""
        if self.role is Role.GATEWAY:
            self._close_tenure()
            tr = self.node.tracer
            if tr.gateway:
                tr.emit("gateway.demote", node=self.node.id, cell=self.my_cell)
            self.role = Role.ACTIVE
            self.hosts.clear()
            self.my_gateway = None
            self.my_gateway_level = None

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message, sender_id: int) -> None:
        if self.role is Role.DEAD:
            return
        entry = self._dispatch.get(type(message))
        if entry is not None:
            fn, wants_sender = entry
            if wants_sender:
                fn(message, sender_id)
            else:
                fn(message)
            return
        if isinstance(message, Hello):
            self._on_hello(message)
        elif isinstance(message, DataEnvelope):
            self._on_envelope(message, sender_id)
        elif isinstance(message, Rreq):
            self._on_rreq(message)
        elif isinstance(message, Rrep):
            self._on_rrep(message)
        elif isinstance(message, Rerr):
            self._on_rerr(message)
        elif isinstance(message, Retire):
            self._on_retire(message)
        elif isinstance(message, TablesTransfer):
            self._on_tables_transfer(message)
        elif isinstance(message, Leave):
            self._on_leave(message)
        elif isinstance(message, SleepNotify):
            self._on_sleep_notify(message)
        elif isinstance(message, Acq):
            self._on_acq(message, sender_id)

    # -- HELLO ----------------------------------------------------------
    def _on_hello(self, h: Hello) -> None:
        now = self.now
        if h.cell != self.my_cell:
            if h.gflag:
                self.neighbor_gateways[h.cell] = (h.id, now)
                # A stale same-cell record for this host is gone.
                self.cell_peers.pop(h.id, None)
            return

        self.cell_peers[h.id] = (
            Candidate(h.id, h.level, h.dist, h.dwell_s, h.tenure_s), now
        )

        if h.gflag:
            self.neighbor_gateways[h.cell] = (h.id, now)
            if self.is_gateway and h.id != self.node.id:
                self._resolve_gateway_conflict(h)
                return
            first_sighting = self.my_gateway != h.id
            self._set_my_gateway(h)
            if self.role is Role.ACTIVE:
                self._consider_takeover(h)
                if self.role is Role.ACTIVE:
                    self._on_gateway_known(first_sighting)
        else:
            if self.is_gateway:
                newcomer = not self.hosts.is_known(h.id)
                self.hosts.mark_active(h.id)
                if newcomer:
                    # §3.2: the gateway answers a newcomer's HELLO.
                    self._hello_response()
                    self._member_registered(h.id)

    def _set_my_gateway(self, h: Hello) -> None:
        self.my_gateway = h.id
        self.my_gateway_level = h.level
        if self.role is Role.ACTIVE:
            self.watch_timer.start(
                self.params.hello_period_s * self.params.hello_loss_tolerance
            )

    def _consider_takeover(self, gw_hello: Hello) -> None:
        """§3.2 case 1: an incoming host replaces the gateway only with a
        *strictly higher* battery band (prevents replacement churn)."""
        if not self.energy_aware:
            return
        if self.node.energy_level() > gw_hello.level:
            self.counters.inc("gateway_takeovers")
            self.become_gateway()

    def _on_gateway_known(self, first_sighting: bool) -> None:
        """Hook: ECGRID puts idle non-gateways to sleep here."""

    def _resolve_gateway_conflict(self, other: Hello) -> None:
        """Two gateways in one grid (merge or duplicate election): the
        election rules decide; the loser hands over its tables."""
        me = self.self_candidate()
        them = Candidate(
            other.id, other.level, other.dist, other.dwell_s, other.tenure_s
        )
        if beats(me, them, self.energy_aware, self.election_policy):
            # Re-assert; the other side demotes on hearing us.
            self._hello_response()
            return
        self.counters.inc("gateway_conflicts_lost")
        tr = self.node.tracer
        if tr.gateway:
            tr.emit(
                "gateway.conflict_lost", node=self.node.id,
                cell=self.my_cell, other=other.id,
            )
        transfer = TablesTransfer(
            cell=self.my_cell,
            rtab=self.routing.snapshot(),
            htab=self.hosts.snapshot(),
        )
        self._unicast(transfer, other.id)
        self.demote_to_active()
        self._set_my_gateway(other)
        self._after_demotion()

    def _after_demotion(self) -> None:
        """Hook: ECGRID goes to sleep after losing a conflict."""

    # -- membership messages ---------------------------------------------
    def _on_tables_transfer(self, msg: TablesTransfer) -> None:
        if msg.cell != self.my_cell:
            return
        if self.is_gateway:
            self.routing.load_snapshot(
                msg.rtab, self.now, self.params.route_lifetime_s
            )
            self.hosts.load_snapshot(msg.htab)
            self.hosts.mark_active(self.node.id)

    def _on_leave(self, msg: Leave) -> None:
        if self.is_gateway:
            self.hosts.remove(msg.id)
            self._reroute_host_buffer(msg.id)

    def _on_sleep_notify(self, msg: SleepNotify) -> None:
        if self.is_gateway:
            self.hosts.mark_sleeping(msg.id)

    def _on_acq(self, msg: Acq, sender_id: int) -> None:
        """Hook: only the ECGRID gateway answers ACQ (§3.3)."""

    # -- RETIRE -----------------------------------------------------------
    def _on_retire(self, msg: Retire) -> None:
        if msg.cell != self.my_cell:
            gw = self.neighbor_gateways.get(msg.cell)
            if gw is not None and gw[0] == msg.gateway_id:
                del self.neighbor_gateways[msg.cell]
            return
        # §3.2: store the routing table and elect a new gateway.
        self.routing.load_snapshot(msg.rtab, self.now, self.params.route_lifetime_s)
        if self.my_gateway == msg.gateway_id:
            self.my_gateway = None
            self.my_gateway_level = None
        self.cell_peers.pop(msg.gateway_id, None)
        if self.role is Role.ACTIVE:
            self._hello_soon()
            self.watch_timer.start(
                0.5 * self.params.hello_period_s
                * (1.0 + self.rng.uniform(0.0, 0.3))
            )

    # ------------------------------------------------------------------
    # Mobility (§3.2 "Gateway Maintenance")
    # ------------------------------------------------------------------
    def on_cell_changed(self, old_cell: GridCoord, new_cell: GridCoord) -> None:
        if self.role is Role.DEAD:
            return
        if self.role is Role.SLEEPING:
            # A sleeping host acts on its dwell timer, not on GPS
            # interrupts (§3.2); the medium's bucket was updated by the
            # node already.
            return
        tr = self.node.tracer
        if tr.cell:
            tr.emit(
                "cell.enter", node=self.node.id, old=old_cell,
                new=new_cell, role=self.role.value,
            )
        self.my_cell = new_cell
        self.cell_peers.clear()
        if self.role is Role.GATEWAY:
            self._retire_because_leaving(old_cell)
        else:
            if self.my_gateway is not None and self.my_gateway != self.node.id:
                self.counters.inc("leave_sent")
                self._unicast(Leave(id=self.node.id, cell=old_cell), self.my_gateway)
            self.enter_grid_as_newcomer()

    def _retire_because_leaving(self, old_cell: GridCoord) -> None:
        """The departing gateway wakes its grid, waits tau, then
        broadcasts RETIRE with its tables (§3.2)."""
        self.counters.inc("gateway_moves")
        tr = self.node.tracer
        if tr.gateway:
            tr.emit(
                "gateway.retire", node=self.node.id, cell=old_cell,
                reason="move",
            )
        self._retiring = True
        if self.uses_ras:
            self.node.ras.page_grid(self.node.radio, old_cell)
        rtab = self.routing.snapshot()
        htab = self.hosts.snapshot()
        htab.pop(self.node.id, None)
        retire = Retire(
            cell=old_cell, gateway_id=self.node.id, rtab=rtab, htab=htab
        )
        self.sim.after(self.params.retire_wait_s, self._finish_retire_move, retire)

    def _finish_retire_move(self, retire: Retire) -> None:
        if self.role is Role.DEAD:
            return
        self._broadcast(retire)
        self._retiring = False
        self.demote_to_active()
        # §3.4 case 3: any personal route whose next grid no longer
        # neighbors us is re-pointed through the grid we just left (its
        # new gateway inherited our table via RETIRE), trading one
        # extra hop for route continuity.
        redirected = self.routing.redirect_non_adjacent(
            self.node.cell(), retire.cell
        )
        if redirected:
            self.counters.inc("routes_redirected_via_old_grid", redirected)
        self.enter_grid_as_newcomer()

    def retire_in_place(self) -> None:
        """Hand off without leaving (load balance / imminent death)."""
        if not self.is_gateway or self._retiring:
            return
        self.counters.inc("gateway_retirements")
        tr = self.node.tracer
        if tr.gateway:
            tr.emit(
                "gateway.retire", node=self.node.id, cell=self.my_cell,
                reason="rotate",
            )
        self._retiring = True
        if self.uses_ras:
            self.node.ras.page_grid(self.node.radio, self.my_cell)
        rtab = self.routing.snapshot()
        htab = self.hosts.snapshot()
        htab.pop(self.node.id, None)
        retire = Retire(
            cell=self.my_cell, gateway_id=self.node.id, rtab=rtab, htab=htab
        )
        self.sim.after(self.params.retire_wait_s, self._finish_retire_in_place, retire)

    def _finish_retire_in_place(self, retire: Retire) -> None:
        if self.role is Role.DEAD:
            return
        self._broadcast(retire)
        self._retiring = False
        self.demote_to_active()
        # Participate in the election we just triggered.
        self._hello_soon()
        self.watch_timer.start(
            0.5 * self.params.hello_period_s * (1.0 + self.rng.uniform(0.0, 0.3))
        )

    def enter_grid_as_newcomer(self) -> None:
        """§3.2 'hosts move into a new grid': broadcast HELLO; if no
        gateway answers within a HELLO period, the grid is empty and we
        declare ourselves."""
        self.role = Role.ACTIVE
        self.my_gateway = None
        self.my_gateway_level = None
        self.my_cell = self.node.cell()
        if not self.hello_timer.running:
            self.hello_timer.start(initial_delay=self.params.hello_period_s)
        self._hello_soon(0.05)
        self.watch_timer.start(
            self.params.hello_period_s * (1.0 + self.rng.uniform(0.05, 0.25))
        )

    # ------------------------------------------------------------------
    # Hooks the routing mixin provides
    # ------------------------------------------------------------------
    def _on_envelope(self, env: DataEnvelope, sender_id: int) -> None:
        raise NotImplementedError

    def _on_rreq(self, msg: Rreq) -> None:
        raise NotImplementedError

    def _on_rrep(self, msg: Rrep) -> None:
        raise NotImplementedError

    def _on_rerr(self, msg: Rerr) -> None:
        raise NotImplementedError

    def _flush_host_buffer(self, host_id: int) -> None:
        raise NotImplementedError

    def _member_registered(self, host_id: int) -> None:
        raise NotImplementedError

    def _reroute_host_buffer(self, host_id: int) -> None:
        raise NotImplementedError
