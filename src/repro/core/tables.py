"""Gateway state: grid-based routing table and per-grid host table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.geo.grid import GridCoord


@dataclass
class RouteEntry:
    """A grid-by-grid route: packets for ``dest`` go to the gateway of
    ``next_cell`` (paper §3.3: tables are kept per grid, not per host)."""

    next_cell: GridCoord
    seq: int
    expires_at: float

    def fresher_than(self, seq: int) -> bool:
        return self.seq > seq


class RoutingTable:
    """Destination-host -> next-grid mapping with AODV-style freshness.

    An entry is replaced only by a strictly fresher sequence number, or
    by any sequence once the entry expired — the standard loop-avoidance
    discipline ECGRID inherits from AODV via GRID.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, RouteEntry] = {}

    def lookup(self, dest: int, now: float) -> Optional[RouteEntry]:
        entry = self._entries.get(dest)
        if entry is None or entry.expires_at < now:
            return None
        return entry

    def update(
        self,
        dest: int,
        next_cell: GridCoord,
        seq: int,
        now: float,
        lifetime: float,
    ) -> bool:
        """Install/refresh a route; returns True if the table changed."""
        entry = self._entries.get(dest)
        if entry is not None and entry.expires_at >= now and entry.seq > seq:
            return False
        self._entries[dest] = RouteEntry(next_cell, seq, now + lifetime)
        return True

    def invalidate(self, dest: int) -> None:
        self._entries.pop(dest, None)

    def invalidate_via(self, cell: GridCoord) -> Iterable[int]:
        """Drop every route through ``cell``; returns affected dests."""
        broken = [d for d, e in self._entries.items() if e.next_cell == cell]
        for d in broken:
            del self._entries[d]
        return broken

    def redirect_non_adjacent(
        self, new_cell: GridCoord, old_cell: GridCoord
    ) -> int:
        """§3.4 case 3: the table's owner moved from ``old_cell`` to
        ``new_cell``; every entry whose next grid no longer neighbors
        the owner is re-pointed at ``old_cell`` (always adjacent to the
        new position), making those routes one hop longer instead of
        broken.  Returns the number of entries rewritten."""
        rewritten = 0
        for entry in self._entries.values():
            dx = abs(entry.next_cell[0] - new_cell[0])
            dy = abs(entry.next_cell[1] - new_cell[1])
            if max(dx, dy) > 1 and entry.next_cell != old_cell:
                entry.next_cell = old_cell
                rewritten += 1
        return rewritten

    def touch(self, dest: int, now: float, lifetime: float) -> None:
        """Refresh an entry's lifetime on use."""
        entry = self._entries.get(dest)
        if entry is not None:
            entry.expires_at = max(entry.expires_at, now + lifetime)

    def snapshot(self) -> Dict[int, Tuple[GridCoord, int]]:
        """Compact form carried inside RETIRE / TablesTransfer messages."""
        return {d: (e.next_cell, e.seq) for d, e in self._entries.items()}

    def load_snapshot(
        self, snap: Dict[int, Tuple[GridCoord, int]], now: float, lifetime: float
    ) -> None:
        for dest, (next_cell, seq) in snap.items():
            self.update(dest, next_cell, seq, now, lifetime)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dest: int) -> bool:
        return dest in self._entries


class HostTable:
    """The gateway's record of hosts in its grid: id -> awake? (§3)."""

    def __init__(self) -> None:
        self._status: Dict[int, bool] = {}

    def mark_active(self, host_id: int) -> None:
        self._status[host_id] = True

    def mark_sleeping(self, host_id: int) -> None:
        self._status[host_id] = False

    def remove(self, host_id: int) -> None:
        self._status.pop(host_id, None)

    def is_known(self, host_id: int) -> bool:
        return host_id in self._status

    def is_awake(self, host_id: int) -> Optional[bool]:
        """True/False if known, None if the host is not in this grid."""
        return self._status.get(host_id)

    def members(self) -> Iterable[int]:
        return self._status.keys()

    def snapshot(self) -> Dict[int, bool]:
        return dict(self._status)

    def load_snapshot(self, snap: Dict[int, bool]) -> None:
        self._status.update(snap)

    def clear(self) -> None:
        self._status.clear()

    def __len__(self) -> int:
        return len(self._status)
