"""ECGRID — the paper's contribution — and the grid-protocol machinery
it shares with the GRID baseline.

Public entry point: :class:`repro.core.protocol.EcGridProtocol`.
"""

from repro.core.messages import (
    Acq,
    DataEnvelope,
    Hello,
    Leave,
    Retire,
    Rerr,
    Rrep,
    Rreq,
    SleepNotify,
    TablesTransfer,
)
from repro.core.tables import HostTable, RouteEntry, RoutingTable
from repro.core.election import Candidate, elect
from repro.core.protocol import EcGridProtocol

__all__ = [
    "Hello",
    "Retire",
    "Leave",
    "Acq",
    "SleepNotify",
    "TablesTransfer",
    "Rreq",
    "Rrep",
    "Rerr",
    "DataEnvelope",
    "RouteEntry",
    "RoutingTable",
    "HostTable",
    "Candidate",
    "elect",
    "EcGridProtocol",
]
