"""Grid-by-grid route discovery and data forwarding (paper §3.3–3.4).

Mixed into :class:`repro.core.base.GridProtocolBase`.  Implements the
AODV-derived machinery GRID and ECGRID share: region-confined RREQ
flooding between gateways, reverse-pointer RREP return, grid-based
routing tables, data forwarding through neighbor gateways, buffering
during discovery, RERR on forwarding breaks, and — for protocols that
page (ECGRID) — buffering + RAS wakeup for sleeping in-grid
destinations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from repro.core.base import GridProtocolBase, Role
from repro.core.messages import DataEnvelope, Rerr, Rrep, Rreq
from repro.des.timer import Timer
from repro.geo.grid import GridCoord
from repro.geo.region import bounding_region, whole_map_region
from repro.net.packet import DataPacket

#: Cap on the remembered (src, rreq_id) duplicate-detection keys.
_SEEN_RREQ_LIMIT = 8192


class _Pending:
    """One in-progress route discovery with its buffered packets."""

    __slots__ = ("dest", "queue", "retries", "timer", "restarts", "cooling")

    def __init__(self, dest: int, timer: Timer) -> None:
        self.dest = dest
        self.queue: Deque[DataPacket] = deque()
        self.retries = 0
        self.timer = timer
        #: After exhausting the retry budget the discovery cools down
        #: once and restarts: under heavy churn the destination is
        #: often mid-migration (sleeping, unregistered) and appears at
        #: its new gateway a second later.
        self.restarts = 0
        self.cooling = False


class GridRoutingMixin(GridProtocolBase):
    """Routing engine shared by the grid-protocol family."""

    #: ECGRID buffers and RAS-pages sleeping in-grid destinations; GAF
    #: famously cannot (paper §1), and in GRID nobody sleeps.
    page_sleeping_hosts = False
    #: Delay between paging a host and pushing its buffered packets
    #: (RAS burst + activation + margin).
    _page_flush_delay_s = 0.005
    _page_attempt_limit = 2

    def _init_routing(self) -> None:
        self.seq = 0
        self._rreq_counter = 0
        self._seen_rreq: Set[Tuple[int, int]] = set()
        self._seen_rreq_order: Deque[Tuple[int, int]] = deque()
        self.pending: Dict[int, _Pending] = {}
        self.location_cache: Dict[int, GridCoord] = {}
        #: Packets waiting for *any* gateway (we are a gateway-less
        #: active host, e.g. mid-election).
        self.pending_local: Deque[DataPacket] = deque()
        #: Gateway-side buffers for sleeping in-grid destinations.
        self.host_buffers: Dict[int, Deque[DataPacket]] = {}
        #: Paging bursts sent per buffering episode (reset on a
        #: successful in-grid delivery).
        self._page_attempts: Dict[int, int] = {}
        #: Destinations with a `_flush_host_buffer` event in flight.
        self._page_flush_pending: Set[int] = set()
        #: Bumped on every demotion/death.  Scheduled flush events carry
        #: the epoch they were issued under and no-op if it has moved
        #: on, so a flush from a previous gateway tenure cannot clear
        #: the pending flag (or drain the buffer early) of a paging
        #: episode started after re-election.
        self._paging_epoch = 0

    # ------------------------------------------------------------------
    # Application entry
    # ------------------------------------------------------------------
    def send_data(self, packet: DataPacket) -> None:
        if self.role is Role.DEAD:
            return
        if self.role is Role.GATEWAY:
            self._route_packet(packet)
        elif self.role is Role.SLEEPING:
            self._send_data_while_sleeping(packet)
        elif self.my_gateway is not None and self.my_gateway != self.node.id:
            self._send_via_gateway(packet)
        else:
            self._queue_local(packet)

    def _send_data_while_sleeping(self, packet: DataPacket) -> None:
        """Default (protocols without sleep never hit this)."""
        self._queue_local(packet)

    def _send_via_gateway(self, packet: DataPacket) -> None:
        env = DataEnvelope(packet=packet, from_cell=self.my_cell)
        gw = self.my_gateway
        self._unicast(
            env,
            gw,
            on_fail=lambda _m, _d: self._gateway_send_failed(packet),
        )

    def _gateway_send_failed(self, packet: DataPacket) -> None:
        """Unicast to our gateway died: a no-gateway event (§3.2 case 2
        of the detection list).  Buffer and force re-election."""
        if self.role is Role.DEAD:
            self._drop(packet, "node_died")
            return
        self.counters.inc("gateway_unreachable")
        self._queue_local(packet)
        if self.role is Role.ACTIVE:
            self.my_gateway = None
            self.my_gateway_level = None
            self._hello_soon()
            self.watch_timer.start(0.25 * self.params.hello_period_s)

    def _queue_local(self, packet: DataPacket) -> None:
        if len(self.pending_local) >= self.params.buffer_limit:
            self._drop(self.pending_local.popleft(), "buffer_overflow")
        self.pending_local.append(packet)

    def _drop(self, packet: DataPacket, reason: str) -> None:
        """Discard a data packet, keeping the per-packet delivery
        accounting and the overhead counters in agreement (drops were
        previously invisible to
        :class:`~repro.metrics.collectors.PacketLog`)."""
        if reason == "buffer_overflow":
            self.counters.inc("buffer_drops")
        self.node.report_drop(packet, reason)

    def _flush_pending_local(self) -> None:
        while self.pending_local:
            if self.role is Role.GATEWAY:
                self._route_packet(self.pending_local.popleft())
            elif self.my_gateway is not None and self.my_gateway != self.node.id:
                self._send_via_gateway(self.pending_local.popleft())
            else:
                break

    # Hooks from the base class --------------------------------------
    def _on_gateway_known(self, first_sighting: bool) -> None:
        self._flush_pending_local()

    def _on_became_gateway(self) -> None:
        self._flush_pending_local()

    def demote_to_active(self) -> None:
        was_gateway = self.is_gateway
        super().demote_to_active()
        if was_gateway:
            self._demote_cleanup()

    def _demote_cleanup(self) -> None:
        """Re-inject buffered work so the successor gateway handles it."""
        self._paging_epoch += 1
        for p in self.pending.values():
            p.timer.cancel()
            while p.queue:
                self._queue_local(p.queue.popleft())
        self.pending.clear()
        for buf in self.host_buffers.values():
            while buf:
                self._queue_local(buf.popleft())
        self.host_buffers.clear()
        self._page_attempts.clear()
        self._page_flush_pending.clear()

    def _routing_on_death(self) -> None:
        self._paging_epoch += 1
        for p in self.pending.values():
            p.timer.cancel()
            while p.queue:
                self._drop(p.queue.popleft(), "node_died")
        self.pending.clear()
        while self.pending_local:
            self._drop(self.pending_local.popleft(), "node_died")
        for buf in self.host_buffers.values():
            while buf:
                self._drop(buf.popleft(), "node_died")
        self.host_buffers.clear()
        self._page_attempts.clear()
        self._page_flush_pending.clear()

    # ------------------------------------------------------------------
    # Gateway forwarding
    # ------------------------------------------------------------------
    def _route_packet(self, packet: DataPacket) -> None:
        dest = packet.dst
        if dest == self.node.id:
            self.node.deliver_to_app(packet)
            return
        if self.hosts.is_known(dest):
            self._deliver_in_grid(packet, dest)
            return
        entry = self.routing.lookup(dest, self.now)
        if entry is not None:
            self._forward(packet, dest, entry.next_cell)
        else:
            self._start_discovery(dest, packet)

    def _gateway_of(self, cell: GridCoord) -> Optional[int]:
        """Fresh neighbor-gateway lookup (HELLO-derived, §3.1)."""
        if cell == self.my_cell:
            return self.node.id if self.is_gateway else self.my_gateway
        rec = self.neighbor_gateways.get(cell)
        if rec is None:
            return None
        gw_id, heard = rec
        horizon = self.params.hello_period_s * self.params.hello_loss_tolerance
        if self.now - heard > horizon:
            del self.neighbor_gateways[cell]
            return None
        return gw_id

    def _forward(self, packet: DataPacket, dest: int, next_cell: GridCoord) -> None:
        gw = self._gateway_of(next_cell)
        if gw is None or gw == self.node.id:
            self.routing.invalidate(dest)
            self._start_discovery(dest, packet)
            return
        self.routing.touch(dest, self.now, self.params.route_lifetime_s)
        env = DataEnvelope(packet=packet, from_cell=self.my_cell)
        self.counters.inc("data_forwarded")
        self._unicast(
            env,
            gw,
            on_fail=lambda _m, _d: self._forward_failed(packet, dest, next_cell, gw),
        )

    def _forward_failed(
        self, packet: DataPacket, dest: int, next_cell: GridCoord, gw_id: int
    ) -> None:
        if self.role is Role.DEAD:
            self._drop(packet, "node_died")
            return
        self.counters.inc("forward_failures")
        rec = self.neighbor_gateways.get(next_cell)
        if rec is not None and rec[0] == gw_id:
            del self.neighbor_gateways[next_cell]
        self.routing.invalidate(dest)
        if self.role is Role.GATEWAY:
            # Local repair, plus RERR so the source re-discovers (§3.4).
            self._start_discovery(dest, packet)
            self._send_rerr(packet.src, dest)
        else:
            self._queue_local(packet)

    # ------------------------------------------------------------------
    # In-grid delivery (gateway -> member host)
    # ------------------------------------------------------------------
    def _deliver_in_grid(self, packet: DataPacket, dest: int) -> None:
        awake = self.hosts.is_awake(dest)
        if awake is False and self.page_sleeping_hosts:
            self._buffer_and_page(dest, packet)
            return
        env = DataEnvelope(packet=packet, from_cell=self.my_cell)
        self._unicast(
            env,
            dest,
            on_ok=lambda _m, _d: self._page_attempts.pop(dest, None),
            on_fail=lambda _m, _d: self._in_grid_failed(packet, dest),
        )

    def _in_grid_failed(self, packet: DataPacket, dest: int) -> None:
        if self.role is Role.DEAD:
            self._drop(packet, "node_died")
            return
        if self.role is not Role.GATEWAY:
            # We demoted while the unicast was in flight.  Buffering
            # into ``host_buffers`` here would strand the packet (only
            # gateways flush those buffers) and charging the failure to
            # the host would poison the successor's view of it; requeue
            # for whichever gateway we end up with instead.
            self._queue_local(packet)
            return
        if self.page_sleeping_hosts:
            attempts = self._page_attempts.get(dest, 0)
            if attempts < self._page_attempt_limit:
                # The host table said awake but the host is not
                # reachable: assume it fell asleep and page it.
                self.hosts.mark_sleeping(dest)
                self._buffer_and_page(dest, packet)
                return
        # The host is gone (left the grid without LEAVE, or died).
        self.counters.inc("in_grid_drops")
        self._drop(packet, "host_unreachable")
        self._drop_host_buffer(dest, "host_unreachable")

    def _buffer_and_page(self, dest: int, packet: Optional[DataPacket]) -> None:
        """§3.3: buffer at the gateway, wake the destination via RAS,
        then push the buffered packets.

        Whenever packets are buffered, a flush is guaranteed to be in
        flight: either one is already scheduled, or a fresh page + flush
        is issued here.  (The seed code skipped the flush when a page
        had been sent before, so a packet buffered after the previous
        flush fired — the `_in_grid_failed` re-page path — sat in
        ``host_buffers`` forever.)  Paging bursts per buffering episode
        are capped at ``_page_attempt_limit``; exhausting the budget
        drops the buffer and forgets the host, like any unreachable
        in-grid destination.
        """
        buf = self.host_buffers.setdefault(dest, deque())
        if packet is not None:
            if len(buf) >= self.params.buffer_limit:
                self._drop(buf.popleft(), "buffer_overflow")
            buf.append(packet)
        if dest in self._page_flush_pending:
            # The in-flight flush will push this packet too.
            self._trace_page_state(dest)
            return
        attempts = self._page_attempts.get(dest, 0)
        if attempts >= self._page_attempt_limit:
            self._drop_host_buffer(dest, "page_exhausted")
            return
        self._page_attempts[dest] = attempts + 1
        self.counters.inc("pages_sent")
        self.node.ras.page_host(self.node.radio, dest)
        self._page_flush_pending.add(dest)
        self.sim.after(
            self._page_flush_delay_s, self._flush_host_buffer, dest,
            self._paging_epoch,
        )
        self._trace_page_state(dest)

    def _flush_host_buffer(self, dest: int, epoch: Optional[int] = None) -> None:
        """Push buffered packets to a (hopefully) now-awake host.

        ``epoch`` is set on the scheduled (page-delayed) flushes; a
        stale one — issued before a demotion that has since been
        reversed — must not touch the current episode's state.  Direct
        calls (``_member_registered``) pass no epoch and always run.
        """
        if epoch is not None and epoch != self._paging_epoch:
            return
        self._page_flush_pending.discard(dest)
        if self.role is not Role.GATEWAY:
            return
        buf = self.host_buffers.pop(dest, None)
        if not buf:
            return
        self.hosts.mark_active(dest)
        while buf:
            self._deliver_in_grid(buf.popleft(), dest)

    def _drop_host_buffer(self, dest: int, reason: str) -> None:
        """Give up on an in-grid destination: drop its buffer, forget
        its paging state, and remove it from the host table so the next
        packet goes through ordinary discovery."""
        buf = self.host_buffers.pop(dest, None)
        self._page_attempts.pop(dest, None)
        self.hosts.remove(dest)
        if not buf:
            return
        tr = self.node.tracer
        if tr.page:
            tr.emit(
                "page.drop", node=self.node.id, dest=dest,
                count=len(buf), reason=reason,
            )
        self.counters.inc("in_grid_drops", len(buf))
        while buf:
            self._drop(buf.popleft(), reason)

    def _trace_page_state(self, dest: int) -> None:
        """Emit the buffer/flush state for ``dest`` (``page.buffer``).

        The :class:`~repro.obs.audit.BufferFlushAuditor` checks the
        invariant this reports: a non-empty host buffer always has a
        flush in flight."""
        tr = self.node.tracer
        if tr.page:
            buf = self.host_buffers.get(dest)
            tr.emit(
                "page.buffer", node=self.node.id, dest=dest,
                qlen=len(buf) if buf else 0,
                pending=dest in self._page_flush_pending,
            )

    def _member_registered(self, dest: int) -> None:
        """A host just (re)joined our grid: any route discovery we were
        running for it resolves locally, and buffered frames flush."""
        p = self.pending.pop(dest, None)
        if p is not None:
            p.timer.cancel()
            while p.queue:
                self._deliver_in_grid(p.queue.popleft(), dest)
        self._flush_host_buffer(dest)

    def _reroute_host_buffer(self, dest: int) -> None:
        """The host left the grid: route its buffered packets normally
        (discovery will find its new grid once it re-registers)."""
        buf = self.host_buffers.pop(dest, None)
        self._page_attempts.pop(dest, None)
        if not buf:
            return
        while buf:
            self._route_packet(buf.popleft())

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------
    def _start_discovery(self, dest: int, packet: Optional[DataPacket]) -> None:
        p = self.pending.get(dest)
        if p is None:
            p = _Pending(
                dest, Timer(self.sim, lambda d=dest: self._rreq_timeout(d))
            )
            self.pending[dest] = p
            self._send_rreq(p)
        if packet is not None:
            if len(p.queue) >= self.params.buffer_limit:
                self._drop(p.queue.popleft(), "buffer_overflow")
            p.queue.append(packet)

    def _search_region(self, dest: int, retries: int):
        """The RREQ `range` for this discovery round (§3.3).

        Policies follow the GRID paper's confinement options: the S-D
        bounding rectangle, the rectangle plus a margin ring, or no
        confinement.  Without location information for the destination,
        or after a confined round failed ("another round ... to search
        all areas"), the search goes global.
        """
        known_cell = self.location_cache.get(dest)
        if (
            retries > 0
            or known_cell is None
            or self.params.search_policy == "global"
        ):
            return whole_map_region(self.node.grid)
        margin = (
            self.params.search_margin_cells
            if self.params.search_policy == "bbox_margin"
            else 0
        )
        return bounding_region(
            self.my_cell, known_cell, margin=margin, grid=self.node.grid
        )

    def _send_rreq(self, p: _Pending) -> None:
        self.seq += 1
        self._rreq_counter += 1
        region = self._search_region(p.dest, p.retries)
        msg = Rreq(
            src=self.node.id,
            s_seq=self.seq,
            dst=p.dest,
            d_seq=0,
            rreq_id=self._rreq_counter,
            region=region,
            from_cell=self.my_cell,
            origin_cell=self.my_cell,
        )
        self._remember_rreq((self.node.id, self._rreq_counter))
        self.counters.inc("rreq_originated")
        tr = self.node.tracer
        if tr.rreq:
            tr.emit(
                "rreq.flood", node=self.node.id, dst=p.dest,
                rreq_id=self._rreq_counter, retries=p.retries,
                restarts=p.restarts,
            )
        self._broadcast(msg)
        p.timer.start(self.params.route_request_timeout_s)

    #: Pause before the single discovery restart, and its budget.
    _discovery_cooldown_s = 2.0
    _discovery_restarts = 1

    def _rreq_timeout(self, dest: int) -> None:
        p = self.pending.get(dest)
        if p is None:
            return
        if p.cooling:
            p.cooling = False
            p.retries = 0
            self.counters.inc("discovery_restarts")
            self._send_rreq(p)
            return
        p.retries += 1
        if p.retries > self.params.route_request_retries:
            if p.restarts < self._discovery_restarts:
                p.restarts += 1
                p.cooling = True
                p.timer.start(self._discovery_cooldown_s)
                return
            self.counters.inc("discovery_failures")
            self.counters.inc("data_dropped_no_route", len(p.queue))
            while p.queue:
                self.node.report_drop(p.queue.popleft(), "no_route")
            del self.pending[dest]
            return
        self._send_rreq(p)

    def _remember_rreq(self, key: Tuple[int, int]) -> None:
        self._seen_rreq.add(key)
        self._seen_rreq_order.append(key)
        if len(self._seen_rreq_order) > _SEEN_RREQ_LIMIT:
            old = self._seen_rreq_order.popleft()
            self._seen_rreq.discard(old)

    # -- message handlers ----------------------------------------------
    def _on_rreq(self, msg: Rreq) -> None:
        if self.role is not Role.GATEWAY:
            return  # only gateways participate in route searching
        key = (msg.src, msg.rreq_id)
        if key in self._seen_rreq:
            return
        self._remember_rreq(key)
        if msg.region is not None and not msg.region.contains(self.my_cell):
            return  # outside the searching area: ignore (§3.3)
        # Reverse pointer to the requester, via the previous grid.
        if msg.from_cell != self.my_cell:
            self.routing.update(
                msg.src, msg.from_cell, msg.s_seq, self.now,
                self.params.route_lifetime_s,
            )
        self.location_cache[msg.src] = msg.origin_cell
        if msg.dst == self.node.id or self.hosts.is_known(msg.dst):
            # We are the destination('s gateway): answer (§3.3).
            self.seq += 1
            rep = Rrep(
                src=msg.src,
                dst=msg.dst,
                d_seq=self.seq,
                dest_cell=self.my_cell,
                from_cell=self.my_cell,
            )
            self.counters.inc("rrep_originated")
            self._send_rrep_toward(rep, msg.src)
        else:
            self.counters.inc("rreq_forwarded")
            # Direct construction instead of ``dataclasses.replace``:
            # the flood re-broadcasts one Rreq per gateway per search,
            # and replace()'s kwargs machinery is ~3x the cost of
            # __init__ with identical field values.
            self._broadcast(Rreq(
                src=msg.src, s_seq=msg.s_seq, dst=msg.dst, d_seq=msg.d_seq,
                rreq_id=msg.rreq_id, region=msg.region,
                from_cell=self.my_cell, origin_cell=msg.origin_cell,
                hops=msg.hops + 1,
            ))

    def _send_rrep_toward(self, rep: Rrep, requester: int) -> None:
        if requester == self.node.id:
            self._route_ready(rep)
            return
        entry = self.routing.lookup(requester, self.now)
        if entry is None:
            self.counters.inc("rrep_lost")
            return
        gw = self._gateway_of(entry.next_cell)
        if gw is None or gw == self.node.id:
            self.counters.inc("rrep_lost")
            return
        self._unicast(
            rep,
            gw,
            on_fail=lambda _m, _d: self.counters.inc("rrep_lost"),
        )

    def _on_rrep(self, rep: Rrep) -> None:
        self.routing.update(
            rep.dst, rep.from_cell, rep.d_seq, self.now, self.params.route_lifetime_s
        )
        self.location_cache[rep.dst] = rep.dest_cell
        if rep.src == self.node.id:
            self._route_ready(rep)
        else:
            self._send_rrep_toward(
                Rrep(
                    src=rep.src, dst=rep.dst, d_seq=rep.d_seq,
                    dest_cell=rep.dest_cell, from_cell=self.my_cell,
                    hops=rep.hops + 1,
                ),
                rep.src,
            )

    def _route_ready(self, rep: Rrep) -> None:
        p = self.pending.pop(rep.dst, None)
        if p is None:
            return
        p.timer.cancel()
        while p.queue:
            # send_data dispatches correctly even if our role changed
            # while the discovery was in flight.
            self.send_data(p.queue.popleft())

    def _send_rerr(self, src: int, dest: int) -> None:
        if src == self.node.id or self.hosts.is_known(src):
            return  # the source is local; our own repair covers it
        entry = self.routing.lookup(src, self.now)
        if entry is None:
            return
        gw = self._gateway_of(entry.next_cell)
        if gw is None or gw == self.node.id:
            return
        self.counters.inc("rerr_sent")
        self._unicast(Rerr(src=src, dst=dest, broken_cell=self.my_cell), gw)

    def _on_rerr(self, msg: Rerr) -> None:
        self.routing.invalidate(msg.dst)
        if msg.src == self.node.id or self.hosts.is_known(msg.src):
            return  # reached the source('s gateway): future sends re-discover
        self._send_rerr(msg.src, msg.dst)

    # ------------------------------------------------------------------
    # Data envelopes
    # ------------------------------------------------------------------
    def _on_envelope(self, env: DataEnvelope, sender_id: int) -> None:
        packet = env.packet
        if packet is None:
            return
        packet.hops += 1
        # Passive reverse route toward the application-level source.
        if packet.src != self.node.id and env.from_cell != self.my_cell:
            self.routing.update(
                packet.src, env.from_cell, 0, self.now, self.params.route_lifetime_s
            )
        if packet.dst == self.node.id:
            self._note_activity()
            self.node.deliver_to_app(packet)
            return
        if self.role is Role.GATEWAY:
            self._route_packet(packet)
        elif self.my_gateway is not None and self.my_gateway != self.node.id:
            # We demoted while traffic was in flight; bounce via the
            # current gateway.
            self._send_via_gateway(packet)
        else:
            self._queue_local(packet)

    def _note_activity(self) -> None:
        """Hook: ECGRID resets its idle re-sleep timer on traffic."""
