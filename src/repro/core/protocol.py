"""ECGRID — the Energy-Conserving GRID routing protocol (paper §3).

On top of the shared grid machinery this adds everything that makes
ECGRID energy-conserving:

- non-gateway hosts turn their transceivers off (sleep mode) once a
  gateway is established, after announcing it with SleepNotify;
- the dwell timer (§3.2): a sleeping host wakes at its estimated
  grid-exit time, checks its GPS *without* powering the radio, and
  either re-sleeps or rejoins as a newcomer;
- RAS paging: the gateway wakes a sleeping destination on demand and
  never relies on periodic polling (the key difference from Span/GAF);
- the ACQ handshake (§3.3) for a woken source whose gateway may have
  changed while it slept;
- load-balanced gateway rotation on battery-band changes and the
  pre-death retirement of a lower-band gateway (§3.2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import GridProtocolBase, Role
from repro.core.messages import Acq, Leave, SleepNotify
from repro.core.routing import GridRoutingMixin
from repro.des.timer import Timer
from repro.energy.profile import EnergyLevel
from repro.metrics.collectors import Counters
from repro.mobility.base import next_cell_crossing
from repro.mobility.dwell import estimate_dwell_time
from repro.net.packet import DataPacket
from repro.protocols.base import ProtocolParams

if False:  # pragma: no cover - typing only
    from repro.net.node import Node


class GridFamilyProtocol(GridRoutingMixin):
    """Concrete composition of the shared base + the routing engine."""

    def __init__(self, node, params: ProtocolParams, counters: Optional[Counters] = None):
        super().__init__(node, params, counters)
        self._init_routing()


class EcGridProtocol(GridFamilyProtocol):
    """The paper's protocol."""

    name = "ecgrid"
    energy_aware = True
    uses_ras = True
    page_sleeping_hosts = True

    def __init__(self, node, params: ProtocolParams, counters=None):
        super().__init__(node, params, counters)
        self.dwell_timer = Timer(node.sim, self._on_dwell_expired)
        self.idle_timer = Timer(node.sim, self._on_idle_expired)
        self.acq_timer = Timer(node.sim, self._on_acq_timeout)
        self._sleep_cell = None
        self._predeath_retired = False

    # ------------------------------------------------------------------
    # Sleeping
    # ------------------------------------------------------------------
    def _arm_idle(self) -> None:
        if self.role is Role.ACTIVE:
            self.idle_timer.start(self.params.idle_before_sleep_s)

    def _note_activity(self) -> None:
        if self.role is Role.ACTIVE:
            self._arm_idle()

    def _on_idle_expired(self) -> None:
        self._maybe_sleep()

    def _maybe_sleep(self) -> None:
        """Sleep iff we are an idle non-gateway with a known gateway."""
        if self.role is not Role.ACTIVE:
            return
        if self.my_gateway is None or self.my_gateway == self.node.id:
            return
        if (
            self.node.mac.queue_length > 0
            or self.pending
            or self.pending_local
            or self.acq_timer.armed
        ):
            self._arm_idle()  # busy: check again later
            return
        # Tell the gateway (keeps its status column truthful), sleep on
        # acknowledgement; an unreachable gateway is a no-gateway event.
        self.counters.inc("sleep_notify_sent")
        self._unicast(
            SleepNotify(id=self.node.id),
            self.my_gateway,
            on_ok=lambda _m, _d: self._sleep_now(),
            on_fail=lambda _m, _d: self._gateway_send_failed_quietly(),
        )

    def _gateway_send_failed_quietly(self) -> None:
        if self.role is not Role.ACTIVE:
            return
        self.counters.inc("gateway_unreachable")
        self.my_gateway = None
        self.my_gateway_level = None
        self._hello_soon()
        self.watch_timer.start(0.25 * self.params.hello_period_s)

    def _sleep_now(self) -> None:
        if self.role is not Role.ACTIVE:
            return
        if self.node.mac.queue_length > 0:
            self._arm_idle()
            return
        self.role = Role.SLEEPING
        self.counters.inc("sleeps")
        self.hello_timer.stop()
        self.watch_timer.cancel()
        self.idle_timer.cancel()
        self._sleep_cell = self.node.cell()
        self.node.go_to_sleep()
        self._arm_dwell()

    def _arm_dwell(self) -> None:
        if self.params.dwell_mode == "exact":
            nxt = next_cell_crossing(
                self.node.mobility,
                self.now,
                self.node.grid,
                horizon=self.now + self.params.max_dwell_s,
            )
            raw = (nxt[0] - self.now) if nxt else self.params.max_dwell_s
            dwell = min(
                max(raw, self.params.min_dwell_s), self.params.max_dwell_s
            )
        else:
            dwell = estimate_dwell_time(
                self.node.position(),
                self.node.velocity(),
                self.node.grid,
                self.params.min_dwell_s,
                self.params.max_dwell_s,
            )
        self.dwell_timer.start(dwell)

    def _on_dwell_expired(self) -> None:
        """§3.2: wake to check (GPS only) whether we are leaving."""
        if self.role is not Role.SLEEPING:
            return
        if self.node.cell() == self._sleep_cell:
            # Not leaving: recalculate the dwell and sleep on — the
            # radio never powered up for this check.
            self.counters.inc("dwell_rechecks")
            self._arm_dwell()
            return
        # We left the grid while asleep (or are at the boundary): wake,
        # notify the old gateway, rejoin as a newcomer.
        old_gateway = self.my_gateway
        old_cell = self._sleep_cell
        self._wake_into_active()
        if old_gateway is not None and old_gateway != self.node.id:
            self.counters.inc("leave_sent")
            self._unicast(Leave(id=self.node.id, cell=old_cell), old_gateway)
        self.enter_grid_as_newcomer()

    def _wake_into_active(self) -> None:
        self.dwell_timer.cancel()
        self.node.wake_up()
        self.role = Role.ACTIVE
        self.my_cell = self.node.cell()
        if not self.hello_timer.running:
            self.hello_timer.start(initial_delay=self.params.hello_period_s)

    # ------------------------------------------------------------------
    # RAS pages
    # ------------------------------------------------------------------
    def on_paged(self, broadcast: bool) -> None:
        if self.role is not Role.SLEEPING:
            return
        self.counters.inc("pages_received")
        self._wake_into_active()
        if broadcast:
            # Broadcast sequence: the gateway is retiring; a RETIRE
            # message (which opens an election) should follow.  If it
            # never arrives, the watch declares a no-gateway event.
            self.my_gateway = None
            self.my_gateway_level = None
            self._hello_soon()
            self.watch_timer.start(self.params.hello_period_s)
        else:
            # Host page: buffered data is coming; stay up to receive it
            # and drift back to sleep via the idle timer.
            self.watch_timer.start(
                self.params.hello_period_s * self.params.hello_loss_tolerance
            )
            self._arm_idle()

    # ------------------------------------------------------------------
    # ACQ handshake (§3.3)
    # ------------------------------------------------------------------
    def _send_data_while_sleeping(self, packet: DataPacket) -> None:
        self._wake_into_active()
        self._queue_local(packet)
        self._send_acq(packet.dst)

    def _send_acq(self, dest: int) -> None:
        if self.acq_timer.armed:
            return
        self.counters.inc("acq_sent")
        self._broadcast(Acq(id=self.node.id, cell=self.my_cell, dest=dest))
        self.acq_timer.start(self.params.acq_timeout_s)

    def _on_acq_timeout(self) -> None:
        """No gateway answered the ACQ: detection situation 2 (§3.2)."""
        if self.role is not Role.ACTIVE:
            return
        self.counters.inc("no_gateway_events")
        self._hello_soon()
        self.watch_timer.start(0.25 * self.params.hello_period_s)

    def _on_acq(self, msg: Acq, sender_id: int) -> None:
        if not self.is_gateway or msg.cell != self.my_cell:
            return
        self.hosts.mark_active(msg.id)
        self._member_registered(msg.id)
        self._unicast(self._hello_message(gflag=True), msg.id)

    # ------------------------------------------------------------------
    # Hooks wired into the shared machinery
    # ------------------------------------------------------------------
    def _on_gateway_known(self, first_sighting: bool) -> None:
        self.acq_timer.cancel()
        super()._on_gateway_known(first_sighting)
        self._arm_idle()

    def _on_became_gateway(self) -> None:
        self.acq_timer.cancel()
        self.idle_timer.cancel()
        self.dwell_timer.cancel()
        if not self._inherited_host_table:
            # No RETIRE handoff preceded this election (initial round,
            # or recovery from a crashed gateway): census the grid with
            # the broadcast sequence so silent sleepers re-register.
            # Awake members are unaffected; cost is one paging burst.
            self.node.ras.page_grid(self.node.radio, self.my_cell)
        super()._on_became_gateway()

    def _after_demotion(self) -> None:
        self._arm_idle()

    # ------------------------------------------------------------------
    # Load balancing and pre-death handoff (§3.2)
    # ------------------------------------------------------------------
    def on_battery_level_change(self, old: EnergyLevel, new: EnergyLevel) -> None:
        if (
            self.role is Role.GATEWAY
            and new < old
            and self.params.load_balance
        ):
            self.counters.inc("load_balance_retirements")
            self.retire_in_place()

    def _gateway_periodic_checks(self) -> None:
        """A lower-band gateway serves until its battery is (almost)
        empty, then issues the broadcast sequence and RETIRE (§3.2)."""
        if not self.is_gateway or self._predeath_retired:
            return
        if self.node.battery.infinite:
            return
        tte = self.node.battery.time_until_empty(self.now)
        if tte < 2.0 * self.params.hello_period_s:
            self._predeath_retired = True
            self.counters.inc("predeath_retirements")
            self.retire_in_place()

    # ------------------------------------------------------------------
    def on_death(self) -> None:
        self.dwell_timer.cancel()
        self.idle_timer.cancel()
        self.acq_timer.cancel()
        super().on_death()
