"""Control-message formats of the grid protocol family (paper §3).

Sizes approximate compact binary encodings (AODV-family headers are
24–48 bytes); they matter only through airtime/energy, not semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Tuple

from repro.energy.profile import EnergyLevel
from repro.geo.grid import GridCoord
from repro.geo.region import Rect
from repro.net.packet import DataPacket, Message


@dataclass
class Hello(Message):
    """Periodic beacon of every active host (paper §3.1, five fields).

    ``dwell_s`` / ``tenure_s`` are optional election context (the
    advertiser's grid-dwell estimate and recent gateway tenure),
    populated only under election policies that need them (see
    :mod:`repro.core.election`); an absent field costs no wire bytes,
    so default-policy beacons keep the paper's 20-byte size.
    """

    size_bytes: ClassVar[int] = 20

    id: int = 0
    cell: GridCoord = (0, 0)
    gflag: bool = False
    level: EnergyLevel = EnergyLevel.UPPER
    dist: float = 0.0
    dwell_s: Optional[float] = None
    tenure_s: Optional[float] = None

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        extra = (4 if self.dwell_s is not None else 0) + (
            4 if self.tenure_s is not None else 0
        )
        return self.size_bytes + extra + LINK_OVERHEAD_BYTES

    def describe(self) -> str:
        flag = "G" if self.gflag else "-"
        return f"HELLO({self.id}@{self.cell}{flag})"


@dataclass
class Retire(Message):
    """A gateway's handoff broadcast: RETIRE(grid, rtab) (§3.2).

    Carries snapshots of the routing and host tables so the successor
    inherits state; wire size grows with the table.
    """

    size_bytes: ClassVar[int] = 16  # header; tables add per-entry bytes

    cell: GridCoord = (0, 0)
    gateway_id: int = 0
    rtab: Dict[int, Tuple[GridCoord, int]] = field(default_factory=dict)
    htab: Dict[int, bool] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        return (
            self.size_bytes
            + 8 * len(self.rtab)
            + 5 * len(self.htab)
            + LINK_OVERHEAD_BYTES
        )

    def describe(self) -> str:
        return f"RETIRE({self.gateway_id}@{self.cell}, {len(self.rtab)} routes)"


@dataclass
class TablesTransfer(Message):
    """Routing+host tables handed to a replacing gateway (§3.2 case 1:
    a fresher newcomer takes over and 'the original gateway ... will
    transmit the routing and host tables to the new gateway')."""

    size_bytes: ClassVar[int] = 16

    cell: GridCoord = (0, 0)
    rtab: Dict[int, Tuple[GridCoord, int]] = field(default_factory=dict)
    htab: Dict[int, bool] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        return (
            self.size_bytes
            + 8 * len(self.rtab)
            + 5 * len(self.htab)
            + LINK_OVERHEAD_BYTES
        )


@dataclass
class Leave(Message):
    """Unicast from a departing non-gateway host to its gateway (§3.2)."""

    size_bytes: ClassVar[int] = 16

    id: int = 0
    cell: GridCoord = (0, 0)


@dataclass
class SleepNotify(Message):
    """A non-gateway host tells its gateway it is entering sleep mode,
    keeping the host table's transmit/sleep status column accurate."""

    size_bytes: ClassVar[int] = 12

    id: int = 0


@dataclass
class Acq(Message):
    """ACQ(gid, D): a woken host asks its (possibly changed) gateway to
    handle traffic toward destination D (§3.3)."""

    size_bytes: ClassVar[int] = 16

    id: int = 0
    cell: GridCoord = (0, 0)
    dest: int = 0


@dataclass
class Rreq(Message):
    """Route request, flooded gateway-to-gateway inside ``region``."""

    size_bytes: ClassVar[int] = 28

    src: int = 0
    s_seq: int = 0
    dst: int = 0
    d_seq: int = 0
    rreq_id: int = 0
    region: Optional[Rect] = None
    from_cell: GridCoord = (0, 0)
    origin_cell: GridCoord = (0, 0)
    hops: int = 0

    def describe(self) -> str:
        return f"RREQ({self.src}->{self.dst} #{self.rreq_id})"


@dataclass
class Rrep(Message):
    """Route reply, unicast hop-by-hop along the reverse path."""

    size_bytes: ClassVar[int] = 24

    src: int = 0
    dst: int = 0
    d_seq: int = 0
    dest_cell: GridCoord = (0, 0)
    from_cell: GridCoord = (0, 0)
    hops: int = 0

    def describe(self) -> str:
        return f"RREP({self.dst}~>{self.src})"


@dataclass
class Rerr(Message):
    """Route error: a forwarding gateway tells the source that its route
    to ``dst`` broke so the source re-discovers (§3.4 case 4)."""

    size_bytes: ClassVar[int] = 16

    src: int = 0
    dst: int = 0
    broken_cell: GridCoord = (0, 0)


@dataclass
class DataEnvelope(Message):
    """A data packet in grid-by-grid transit.

    ``from_cell`` is the grid coordinate of the forwarding gateway
    (reverse-pointer bookkeeping); the envelope header adds 8 bytes to
    the payload's wire size.
    """

    size_bytes: ClassVar[int] = 8

    packet: Optional[DataPacket] = None
    from_cell: GridCoord = (0, 0)

    @property
    def wire_bytes(self) -> int:
        from repro.net.packet import LINK_OVERHEAD_BYTES

        payload = self.packet.size_bytes if self.packet is not None else 0
        return self.size_bytes + payload + LINK_OVERHEAD_BYTES

    def describe(self) -> str:
        inner = self.packet.describe() if self.packet else "?"
        return f"ENV[{inner}]"
