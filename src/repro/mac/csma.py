"""A compact CSMA/CA MAC with link-layer acknowledgements.

The model keeps the three channel behaviours the evaluation depends on:
carrier sensing with random backoff (serializes neighbors), unicast
ACK + bounded retry with exponential backoff (absorbs collisions, and
its exhaustion is the link-break signal routing protocols react to),
and broadcast as a single unacknowledged transmission.  Exact 802.11
DCF details (NAV, RTS/CTS, virtual carrier sense) are intentionally
omitted; they shift absolute latency constants, not protocol rankings.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.des.core import Simulator
from repro.des.event import EventHandle
from repro.mac.frames import ACK_WIRE_BYTES, AckFrame, Frame, FrameKind
from repro.energy.profile import RadioMode
from repro.net.packet import BROADCAST, LINK_OVERHEAD_BYTES
from repro.obs.trace import NULL_TRACER
from repro.phy.medium import Medium
from repro.phy.radio import Radio

ReceiveHandler = Callable[[Any, int], None]
SendCallback = Callable[[Any, int], None]


@dataclass
class MacConfig:
    slot_time_s: float = 20e-6
    difs_s: float = 50e-6
    sifs_s: float = 10e-6
    cw_min: int = 16
    cw_max: int = 1024
    retry_limit: int = 5
    queue_limit: int = 512
    #: Extra slack in the ACK timeout beyond the deterministic parts.
    ack_timeout_margin_s: float = 100e-6


@dataclass
class MacStats:
    enqueued: int = 0
    sent_unicast: int = 0
    sent_broadcast: int = 0
    acks_sent: int = 0
    retries: int = 0
    failures: int = 0
    delivered_up: int = 0
    duplicates_dropped: int = 0
    queue_drops: int = 0


class _TxJob:
    __slots__ = ("message", "dst", "wire_bytes", "on_ok", "on_fail", "retries", "seq", "cw")

    def __init__(self, message, dst, wire_bytes, on_ok, on_fail, seq, cw):
        self.message = message
        self.dst = dst
        self.wire_bytes = wire_bytes
        self.on_ok = on_ok
        self.on_fail = on_fail
        self.retries = 0
        self.seq = seq
        self.cw = cw


class CsmaMac:
    """Per-node MAC entity."""

    #: Trace sink (``radio.tx`` events); swapped in by the network when
    #: tracing is on.
    tracer = NULL_TRACER

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        medium: Medium,
        rng: random.Random,
        config: Optional[MacConfig] = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.medium = medium
        self.rng = rng
        self.config = config or MacConfig()
        self.stats = MacStats()
        self.receive_handler: Optional[ReceiveHandler] = None
        self._queue: Deque[_TxJob] = deque()
        self._current: Optional[_TxJob] = None
        self._attempt_ev: Optional[EventHandle] = None
        self._ack_ev: Optional[EventHandle] = None
        self._seq = 0
        self._last_seq_from: Dict[int, int] = {}
        #: Called with each queued message discarded by :meth:`shutdown`
        #: (battery death), so upper layers can account lost payloads.
        self.drop_reporter: Optional[Callable[[Any], None]] = None
        radio.frame_sink = self._on_frame

    # ------------------------------------------------------------------
    # Upper-layer API
    # ------------------------------------------------------------------
    def send(
        self,
        message: Any,
        dst: int,
        wire_bytes: Optional[int] = None,
        on_ok: Optional[SendCallback] = None,
        on_fail: Optional[SendCallback] = None,
    ) -> bool:
        """Queue ``message`` for ``dst`` (a node id, or BROADCAST).

        ``on_ok``/``on_fail`` fire with ``(message, dst)`` when the frame
        is acknowledged / finally given up (broadcasts always "succeed"
        once transmitted).  Returns False if the queue overflowed.
        """
        if not self.radio.alive:
            return False
        if len(self._queue) >= self.config.queue_limit:
            self.stats.queue_drops += 1
            if on_fail is not None:
                self.sim.call_soon(on_fail, message, dst)
            return False
        if wire_bytes is None:
            wire_bytes = getattr(message, "wire_bytes", None)
            if wire_bytes is None:
                wire_bytes = LINK_OVERHEAD_BYTES + getattr(message, "size_bytes", 32)
        self._seq += 1
        job = _TxJob(message, dst, wire_bytes, on_ok, on_fail, self._seq, self.config.cw_min)
        self._queue.append(job)
        self.stats.enqueued += 1
        self._maybe_start()
        return True

    def kick(self) -> None:
        """Resume transmission attempts (call after waking the radio)."""
        self._maybe_start()

    def flush(self) -> int:
        """Drop all queued frames (on shutdown).  Returns count dropped."""
        n = len(self._queue)
        for job in self._queue:
            if job.on_fail is not None:
                self.sim.call_soon(job.on_fail, job.message, job.dst)
        self._queue.clear()
        return n

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._current is not None else 0)

    def shutdown(self) -> None:
        """Stop all activity (battery death).

        Queued frames are discarded without their ``on_fail`` callbacks
        (a dead node runs no protocol logic), but each discarded
        message is handed to :attr:`drop_reporter` synchronously so
        packet accounting sees the loss.
        """
        if self._attempt_ev is not None:
            self._attempt_ev.cancel()
            self._attempt_ev = None
        if self._ack_ev is not None:
            self._ack_ev.cancel()
            self._ack_ev = None
        report = self.drop_reporter
        if report is not None:
            if self._current is not None:
                report(self._current.message)
            for job in self._queue:
                report(job.message)
        self._current = None
        self._queue.clear()

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self._current is not None or not self._queue:
            return
        if not self.radio.awake:
            return
        self._current = self._queue.popleft()
        self._schedule_attempt(self._current.cw)

    def _schedule_attempt(self, cw: int) -> None:
        backoff = self.config.difs_s + self.rng.randrange(cw) * self.config.slot_time_s
        if self._attempt_ev is not None:
            self._attempt_ev.cancel()
        self._attempt_ev = self.sim.after(backoff, self._attempt)

    def _attempt(self) -> None:
        self._attempt_ev = None
        job = self._current
        if job is None:
            return
        # ``radio.awake`` unrolled (property dispatch on every backoff
        # attempt is measurable at 1000 nodes).
        if self.radio.base_mode is not RadioMode.IDLE:
            # Radio was put to sleep mid-contention; park the job back.
            self._queue.appendleft(job)
            self._current = None
            return
        if self.medium.channel_busy(self.radio) or self.radio.rx_count > 0:
            # Busy: redraw a fresh backoff and try again.
            self._schedule_attempt(job.cw)
            return
        frame = Frame(FrameKind.DATA, self.radio.node_id, job.dst, job.seq,
                      job.message, job.wire_bytes)
        tr = self.tracer
        if tr.radio:
            tr.emit(
                "radio.tx", node=self.radio.node_id,
                awake=self.radio.base_mode is RadioMode.IDLE,
                dst=job.dst, bytes=job.wire_bytes,
            )
        airtime = self.medium.transmit(self.radio, frame, job.wire_bytes)
        if job.dst == BROADCAST:
            self.stats.sent_broadcast += 1
            self.sim.after(airtime, self._broadcast_done, job)
        else:
            self.stats.sent_unicast += 1
            timeout = (
                airtime
                + self.medium.config.propagation_delay_s * 2
                + self.config.sifs_s
                + self.medium.airtime(ACK_WIRE_BYTES)
                + self.config.ack_timeout_margin_s
            )
            self._ack_ev = self.sim.after(timeout, self._ack_timeout, job)

    def _broadcast_done(self, job: _TxJob) -> None:
        if self._current is job:
            self._current = None
        if job.on_ok is not None:
            job.on_ok(job.message, job.dst)
        self._maybe_start()

    def _ack_timeout(self, job: _TxJob) -> None:
        self._ack_ev = None
        if self._current is not job:
            return
        job.retries += 1
        if job.retries > self.config.retry_limit:
            self.stats.failures += 1
            self._current = None
            if job.on_fail is not None:
                job.on_fail(job.message, job.dst)
            self._maybe_start()
            return
        self.stats.retries += 1
        job.cw = min(job.cw * 2, self.config.cw_max)
        self._schedule_attempt(job.cw)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Any, sender_id: int) -> None:
        # Data frames outnumber ACKs by more than an order of
        # magnitude; test for them first.
        if not isinstance(frame, Frame):
            if isinstance(frame, AckFrame):
                self._on_ack(frame)
            return
        if frame.dst != BROADCAST and frame.dst != self.radio.node_id:
            return  # overheard; energy already charged by the medium
        if frame.dst == self.radio.node_id:
            # ACK first (even duplicates: the sender may have missed
            # the previous ACK).
            ack = AckFrame(self.radio.node_id, frame.src, frame.seq)
            self.sim.after(self.config.sifs_s, self._send_ack, ack)
            last = self._last_seq_from.get(frame.src)
            if last == frame.seq:
                self.stats.duplicates_dropped += 1
                return
            self._last_seq_from[frame.src] = frame.seq
        self.stats.delivered_up += 1
        if self.receive_handler is not None:
            self.receive_handler(frame.message, frame.src)

    def _send_ack(self, ack: AckFrame) -> None:
        if self.radio.base_mode is not RadioMode.IDLE or self.radio.transmitting:
            return
        self.stats.acks_sent += 1
        tr = self.tracer
        if tr.radio:
            tr.emit(
                "radio.tx", node=self.radio.node_id,
                awake=self.radio.base_mode is RadioMode.IDLE,
                dst=ack.dst, bytes=ack.wire_bytes,
            )
        self.medium.transmit(self.radio, ack, ack.wire_bytes)

    def _on_ack(self, ack: AckFrame) -> None:
        job = self._current
        if job is None or ack.dst != self.radio.node_id:
            return
        if ack.acked_seq != job.seq:
            return
        if self._ack_ev is not None:
            self._ack_ev.cancel()
            self._ack_ev = None
        self._current = None
        if job.on_ok is not None:
            job.on_ok(job.message, job.dst)
        self._maybe_start()
