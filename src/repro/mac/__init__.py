"""Link layer: CSMA/CA medium access with unicast ACK/retry."""

from repro.mac.frames import AckFrame, Frame, FrameKind
from repro.mac.csma import CsmaMac, MacConfig, MacStats

__all__ = ["Frame", "AckFrame", "FrameKind", "CsmaMac", "MacConfig", "MacStats"]
