"""MAC frame formats."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.net.packet import LINK_OVERHEAD_BYTES


class FrameKind(enum.Enum):
    DATA = "data"
    ACK = "ack"


@dataclass
class Frame:
    """A link-layer frame wrapping one upper-layer message."""

    kind: FrameKind
    src: int
    dst: int            # node id or BROADCAST
    seq: int
    message: Any = None
    wire_bytes: int = LINK_OVERHEAD_BYTES

    def describe(self) -> str:  # pragma: no cover - debugging aid
        inner = getattr(self.message, "describe", lambda: repr(self.message))()
        return f"{self.kind.value}[{self.src}->{self.dst} seq={self.seq}] {inner}"


#: Wire size of an ACK frame (802.11 ACKs are 14 bytes + PHY preamble).
ACK_WIRE_BYTES = 14 + 24


@dataclass
class AckFrame:
    """Acknowledgement for a unicast frame, addressed by (src, seq)."""

    src: int    # the acker
    dst: int    # the original sender
    acked_seq: int
    wire_bytes: int = ACK_WIRE_BYTES
