"""Online invariant auditors over the trace bus.

Auditors subscribe to a :class:`~repro.obs.trace.Tracer`
(``tracer.subscribe(auditor)``) and check protocol invariants *as the
run executes*, so a violation carries the exact simulation time and
node instead of surfacing later as silent metric skew.  They complement
the sampling :class:`~repro.experiments.validate.InvariantChecker`:
that one polls network state every few seconds; these see every event.

Shipped auditors (:func:`standard_auditors`):

- :class:`GatewayUniquenessAuditor` — at most one gateway per grid
  cell, modulo a short grace period for the protocol-legal handoff
  window (conflict resolution takes up to a HELLO exchange);
- :class:`BufferFlushAuditor` — a non-empty gateway paging buffer
  always has a flush in flight (the PR-3 stuck-buffer bug class);
- :class:`SleepingTransmitAuditor` — a sleeping radio never transmits;
- :class:`ConservationAuditor` — end-to-end packet accounting:
  ``delivered + dropped <= sent``, no stray uids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.trace import TraceEvent


@dataclass(frozen=True)
class AuditViolation:
    """One detected invariant breach, with its exact event time."""

    t: float
    auditor: str
    kind: str
    node: Optional[int]
    detail: str

    def __str__(self) -> str:
        who = "-" if self.node is None else str(self.node)
        return (
            f"[{self.auditor}] t={self.t:.6f} node={who} "
            f"{self.kind}: {self.detail}"
        )


class Auditor:
    """Base class: subscribes to ``categories``, accumulates
    :class:`AuditViolation` records in :attr:`violations`."""

    #: Trace categories this auditor consumes (``Tracer.subscribe``
    #: force-enables them).
    categories: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.violations: List[AuditViolation] = []

    @property
    def name(self) -> str:
        return type(self).__name__

    def flag(self, t: float, kind: str, node: Optional[int], detail: str) -> None:
        self.violations.append(
            AuditViolation(t, self.name, kind, node, detail)
        )

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def finish(self, t_end: float) -> None:
        """Close out at end-of-run (flag still-open conditions)."""

    @property
    def clean(self) -> bool:
        return not self.violations


class GatewayUniquenessAuditor(Auditor):
    """At most one gateway per grid cell.

    Elections and handoffs legally overlap for a short window (the loser
    of a conflict discovers the winner via HELLO, up to a HELLO period
    later), so duplicate occupancy is only a violation once it outlives
    ``grace_s``.
    """

    categories = ("gateway",)

    def __init__(self, grace_s: float = 3.0) -> None:
        super().__init__()
        self.grace_s = grace_s
        #: cell -> set of node ids currently holding GATEWAY there.
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        #: node -> its gateway cell (from the elect event).
        self._node_cell: Dict[int, Tuple[int, int]] = {}
        #: cell -> time the cell became multiply occupied.
        self._dup_since: Dict[Tuple[int, int], float] = {}

    def on_event(self, event: TraceEvent) -> None:
        node = event.node
        if event.name == "gateway.elect":
            cell = event.fields.get("cell")
            if cell is None or node is None:
                return
            old = self._node_cell.get(node)
            if old is not None and old != cell:
                self._leave(old, node, event.t)
            self._node_cell[node] = cell
            occupants = self._cells.setdefault(cell, set())
            occupants.add(node)
            if len(occupants) > 1 and cell not in self._dup_since:
                self._dup_since[cell] = event.t
        elif event.name == "gateway.demote":
            if node is None:
                return
            cell = self._node_cell.pop(node, None)
            if cell is not None:
                self._leave(cell, node, event.t)

    def _leave(self, cell: Tuple[int, int], node: int, t: float) -> None:
        occupants = self._cells.get(cell)
        if occupants is None:
            return
        occupants.discard(node)
        if len(occupants) <= 1 and cell in self._dup_since:
            since = self._dup_since.pop(cell)
            self._check(cell, since, t, occupants | {node})

    def _check(
        self, cell: Tuple[int, int], since: float, until: float,
        nodes: Set[int],
    ) -> None:
        duration = until - since
        if duration > self.grace_s:
            self.flag(
                since,
                "duplicate_gateways",
                min(nodes) if nodes else None,
                f"cell {cell} held gateways {sorted(nodes)} "
                f"concurrently for {duration:.3f}s (> {self.grace_s}s grace)",
            )

    def finish(self, t_end: float) -> None:
        for cell, since in list(self._dup_since.items()):
            self._check(cell, since, t_end, self._cells.get(cell, set()))
        self._dup_since.clear()


class BufferFlushAuditor(Auditor):
    """Whenever a gateway's per-host paging buffer is non-empty, a
    flush must be in flight — the seed-era stuck-buffer bug's exact
    signature (see ``tests/core/test_page_buffer_regression.py``).

    The routing engine emits a ``page.buffer`` state snapshot
    (``dest``, ``qlen``, ``pending``) at every point where the
    buffer/flush state settles; a snapshot with packets buffered and no
    flush pending is an immediate violation.
    """

    categories = ("page",)

    def on_event(self, event: TraceEvent) -> None:
        if event.name != "page.buffer":
            return
        qlen = event.fields.get("qlen", 0)
        pending = event.fields.get("pending", True)
        if qlen > 0 and not pending:
            self.flag(
                event.t,
                "stuck_buffer",
                event.node,
                f"dest {event.fields.get('dest')}: {qlen} packet(s) "
                f"buffered with no flush in flight",
            )


class SleepingTransmitAuditor(Auditor):
    """A radio whose transceiver is powered down must never transmit.

    The MAC emits ``radio.tx`` with the transmitter's awake state at
    the moment the frame hits the medium.
    """

    categories = ("radio",)

    def on_event(self, event: TraceEvent) -> None:
        if event.name != "radio.tx":
            return
        if not event.fields.get("awake", True):
            self.flag(
                event.t,
                "sleeping_transmit",
                event.node,
                f"transmitted {event.fields.get('bytes', '?')} bytes "
                f"while the radio was not awake",
            )


class ConservationAuditor(Auditor):
    """End-to-end packet conservation: every delivered or dropped uid
    was sent, and ``delivered + dropped <= sent`` at all times (the
    packet log's first-drop-wins / delivery-outranks-drop rules make
    the two sets disjoint)."""

    categories = ("packet",)

    def __init__(self) -> None:
        super().__init__()
        self.sent: Set[int] = set()
        self.delivered: Set[int] = set()
        self.dropped: Set[int] = set()

    def on_event(self, event: TraceEvent) -> None:
        uid = event.fields.get("uid")
        if uid is None:
            return
        if event.name == "packet.sent":
            self.sent.add(uid)
        elif event.name == "packet.delivered":
            if uid not in self.sent:
                self.flag(
                    event.t, "delivered_unsent", event.node,
                    f"uid {uid} delivered but never logged as sent",
                )
            if uid in self.delivered:
                self.flag(
                    event.t, "double_delivery", event.node,
                    f"uid {uid} recorded delivered twice",
                )
            self.delivered.add(uid)
            self.dropped.discard(uid)
        elif event.name == "packet.dropped":
            if uid not in self.sent:
                self.flag(
                    event.t, "dropped_unsent", event.node,
                    f"uid {uid} dropped but never logged as sent",
                )
            if uid in self.delivered:
                self.flag(
                    event.t, "drop_after_delivery", event.node,
                    f"uid {uid} dropped after delivery",
                )
            if uid in self.dropped:
                self.flag(
                    event.t, "double_drop", event.node,
                    f"uid {uid} dropped twice",
                )
            self.dropped.add(uid)

    def finish(self, t_end: float) -> None:
        resolved = len(self.delivered) + len(self.dropped)
        if resolved > len(self.sent):
            self.flag(
                t_end, "conservation", None,
                f"delivered({len(self.delivered)}) + "
                f"dropped({len(self.dropped)}) > sent({len(self.sent)})",
            )


def standard_auditors() -> List[Auditor]:
    """One fresh instance of every shipped auditor."""
    return [
        GatewayUniquenessAuditor(),
        BufferFlushAuditor(),
        SleepingTransmitAuditor(),
        ConservationAuditor(),
    ]


def audit_report(auditors: List[Auditor]) -> str:
    """Human-readable summary of a finished audit pass."""
    lines = []
    total = 0
    for auditor in auditors:
        lines.append(f"{auditor.name}: {len(auditor.violations)} violation(s)")
        for v in auditor.violations:
            lines.append(f"  {v}")
        total += len(auditor.violations)
    lines.insert(0, f"audit: {total} violation(s)")
    return "\n".join(lines)
