"""Structured protocol-event tracing.

A :class:`Tracer` collects typed events (``gateway.elect``,
``page.sent``, ``rreq.flood``, ``cell.enter``, ``drop.*`` ...) from
every layer of the stack into ring-buffered per-category streams, and
can export them as schema-versioned JSONL (round-tripped by
:func:`load_jsonl`).

The design contract is **zero cost when off**: every emission site in
hot code is guarded by a per-category boolean attribute on the tracer
(``tr = self.tracer; if tr.gateway: tr.emit(...)``), and the default
tracer everywhere is the module-level :data:`NULL_TRACER`, whose flags
are all False — a disabled site costs one attribute load and one branch
and never builds an event.  With no tracer attached a run's dispatch
order, RNG streams, counters and metrics are bit-for-bit identical to
an untraced run; the golden-trace harness in ``tests/perf`` pins that.

Emitting never schedules simulator events, draws randomness, or touches
the shared counters, so even with tracing *on* the simulation remains
bit-for-bit identical — tracing only observes.

Online invariant checking subscribes through :meth:`Tracer.subscribe`
(see :mod:`repro.obs.audit`): subscribers receive every event of their
categories synchronously at emission time.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Version of the JSONL export layout.
TRACE_JSONL_SCHEMA = 1

#: Every event category, in stream order.  An event's category is the
#: first dotted component of its name (``gateway.elect`` -> ``gateway``).
#:
#: - ``gateway``: elections, demotions, retirements, conflicts
#: - ``page``: RAS paging and gateway paging-buffer state
#: - ``rreq``: route-discovery floods
#: - ``cell``: grid-cell crossings
#: - ``drop``: per-packet protocol discards (``drop.<reason>``)
#: - ``packet``: end-to-end packet accounting (sent/delivered/dropped)
#: - ``radio``: physical transmissions (for the sleep-safety auditor)
#: - ``fault``: injected fault activations
#: - ``sim``: kernel dispatch statistics (counters only, no event
#:   stream; enabling it attaches the tracer to the instrumented
#:   dispatch loop, which costs wall time)
CATEGORIES = (
    "gateway", "page", "rreq", "cell", "drop", "packet", "radio",
    "fault", "sim",
)

#: Categories enabled by default: everything except ``sim`` (dispatch
#: stats need the instrumented twin loop and are opt-in).
DEFAULT_CATEGORIES = tuple(c for c in CATEGORIES if c != "sim")


class TraceEvent:
    """One traced occurrence: a global sequence number, a simulation
    time, a dotted name, the emitting node (or None for network-level
    events) and free-form ``fields``."""

    __slots__ = ("seq", "t", "name", "category", "node", "fields")

    def __init__(
        self,
        seq: int,
        t: float,
        name: str,
        category: str,
        node: Optional[int],
        fields: Dict[str, Any],
    ) -> None:
        self.seq = seq
        self.t = t
        self.name = name
        self.category = category
        self.node = node
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t,
            "name": self.name,
            "node": self.node,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        name = data["name"]
        return cls(
            data["seq"],
            data["t"],
            name,
            name.partition(".")[0],
            data.get("node"),
            _tuplify(data.get("fields", {})),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.t == other.t
            and self.name == other.name
            and self.node == other.node
            and self.fields == other.fields
        )

    def __repr__(self) -> str:  # pragma: no cover
        extra = "".join(f" {k}={v!r}" for k, v in self.fields.items())
        return f"<{self.name} #{self.seq} t={self.t:.6f} node={self.node}{extra}>"


def _tuplify(value: Any) -> Any:
    """JSON has no tuples; restore lists to tuples so a loaded event
    compares equal to the in-memory one (grid cells are tuples)."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    if isinstance(value, dict):
        return {k: _tuplify(v) for k, v in value.items()}
    return value


class NullTracer:
    """The disabled tracer: every category flag is False and
    :meth:`emit` does nothing.  Installed as the class-level default on
    every traced component, so untraced runs never pay more than a
    boolean test per guarded site."""

    active = False
    gateway = page = rreq = cell = drop = packet = radio = fault = sim = False

    def emit(self, name: str, node: Optional[int] = None,
             t: Optional[float] = None, **fields: Any) -> None:
        return None

    def bind(self, sim: Any) -> None:
        return None

    def subscribe(self, auditor: Any) -> None:
        raise RuntimeError(
            "cannot subscribe to the null tracer; attach a real Tracer "
            "to the network first (Network.attach_tracer)"
        )


#: The shared disabled tracer (stateless; one instance serves everyone).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` streams, one ring buffer per
    category.

    ``categories`` selects which categories record (default: all but
    ``sim``); ``ring`` bounds each stream's length (oldest events are
    evicted, counted in :attr:`evicted`).  Per-category boolean
    attributes (``tracer.gateway`` ...) are the emission guards hot
    call sites test.

    A tracer also satisfies the DES instrument protocol
    (:meth:`on_dispatch`): attaching it to the event loop — done by the
    harness only when the ``sim`` category is enabled — accumulates
    kernel dispatch statistics into :attr:`registry`.
    """

    def __init__(
        self,
        categories: Optional[Sequence[str]] = None,
        ring: int = 65536,
        registry: Optional[Any] = None,
    ) -> None:
        if categories is None:
            categories = DEFAULT_CATEGORIES
        unknown = set(categories) - set(CATEGORIES)
        if unknown:
            raise ValueError(
                f"unknown trace categories {sorted(unknown)}; "
                f"choose from {CATEGORIES}"
            )
        if registry is None:
            from repro.obs.counters import CounterRegistry

            registry = CounterRegistry()
        self.active = True
        self.ring = ring
        self.registry = registry
        self.evicted: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self._streams: Dict[str, deque] = {
            c: deque(maxlen=ring) for c in CATEGORIES
        }
        self._subscribers: Dict[str, List[Any]] = {c: [] for c in CATEGORIES}
        self._seq = 0
        self._sim: Optional[Any] = None
        for c in CATEGORIES:
            setattr(self, c, c in categories)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def bind(self, sim: Any) -> None:
        """Attach the simulator whose clock timestamps emissions."""
        self._sim = sim

    def enable(self, *categories: str) -> None:
        for c in categories:
            if c not in CATEGORIES:
                raise ValueError(f"unknown trace category {c!r}")
            setattr(self, c, True)

    def disable(self, *categories: str) -> None:
        for c in categories:
            if c not in CATEGORIES:
                raise ValueError(f"unknown trace category {c!r}")
            setattr(self, c, False)

    def enabled_categories(self) -> Tuple[str, ...]:
        return tuple(c for c in CATEGORIES if getattr(self, c))

    def subscribe(self, auditor: Any) -> None:
        """Route events of ``auditor.categories`` to
        ``auditor.on_event`` (synchronously, at emission).  Enables the
        categories the auditor needs."""
        for c in auditor.categories:
            if c not in CATEGORIES:
                raise ValueError(f"unknown trace category {c!r}")
            setattr(self, c, True)
            subs = self._subscribers[c]
            if auditor not in subs:
                subs.append(auditor)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, name: str, node: Optional[int] = None,
             t: Optional[float] = None, **fields: Any) -> Optional[TraceEvent]:
        """Record one event.  The category is ``name`` up to the first
        dot; emissions to disabled categories are dropped (call sites
        should guard on the category flag and never get here, but
        unguarded sites stay correct)."""
        category = name.partition(".")[0]
        stream = self._streams.get(category)
        if stream is None:
            raise ValueError(f"event {name!r} has no known category")
        if not getattr(self, category):
            return None
        if t is None:
            t = self._sim.now if self._sim is not None else 0.0
        self._seq += 1
        event = TraceEvent(self._seq, t, name, category, node, fields)
        if len(stream) == stream.maxlen:
            self.evicted[category] += 1
        stream.append(event)
        for sub in self._subscribers[category]:
            sub.on_event(event)
        return event

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def events(self, *categories: str) -> List[TraceEvent]:
        """Events of the given categories (default: all), merged in
        emission order."""
        if not categories:
            categories = CATEGORIES
        streams = [self._streams[c] for c in categories]
        merged = [e for s in streams for e in s]
        merged.sort(key=lambda e: e.seq)
        return merged

    def count(self, category: str) -> int:
        return len(self._streams[category])

    def counts(self) -> Dict[str, int]:
        return {c: len(s) for c, s in self._streams.items() if s}

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write a header line plus one JSON object per event; returns
        the number of events written.  Load with :func:`load_jsonl`."""
        events = self.events()
        header = {
            "schema": TRACE_JSONL_SCHEMA,
            "kind": "ecgrid-trace",
            "categories": list(self.enabled_categories()),
            "counts": self.counts(),
            "evicted": {c: n for c, n in self.evicted.items() if n},
        }
        with open(path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
            for event in events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(events)

    # ------------------------------------------------------------------
    # DES instrument protocol (only wired when ``sim`` is enabled)
    # ------------------------------------------------------------------
    def on_dispatch(self, event: Any, elapsed: float, queue_len: int) -> None:
        reg = self.registry
        reg.inc("sim.events")
        reg.observe("sim.dispatch_s", elapsed)
        reg.set_gauge("sim.queue_len", queue_len)


def load_jsonl(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load a trace written by :meth:`Tracer.export_jsonl`.

    Returns ``(header, events)``; raises ``ValueError`` on a missing or
    mismatched schema so stale files fail loudly.
    """
    with open(path) as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if header.get("kind") != "ecgrid-trace":
            raise ValueError(f"{path}: not an ecgrid trace file")
        if header.get("schema") != TRACE_JSONL_SCHEMA:
            raise ValueError(
                f"{path}: trace schema {header.get('schema')!r} "
                f"!= {TRACE_JSONL_SCHEMA}"
            )
        events = [TraceEvent.from_dict(json.loads(line)) for line in fh if line.strip()]
    return header, events
