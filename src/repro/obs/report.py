"""Trace-derived analysis panels.

Reduces ``gateway`` / ``cell`` trace streams to the quantities the
paper's Fig. 6–8 discussion needs but the metrics layer never measured:
per-gateway tenure intervals and per-cell no-gateway intervals (how
long a grid sat without any gateway — ECGRID's wakeup guarantee breaks
exactly while a cell is uncovered).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import TraceEvent

Cell = Tuple[int, int]
#: (node, cell, t_start, t_end) of one gateway tenure.
Tenure = Tuple[int, Cell, float, float]


def gateway_tenures(
    events: Iterable[TraceEvent], horizon: float
) -> List[Tenure]:
    """Per-gateway tenure intervals from ``gateway.elect`` /
    ``gateway.demote`` events.  Tenures still open at ``horizon`` are
    closed there."""
    open_at: Dict[int, Tuple[Cell, float]] = {}
    tenures: List[Tenure] = []
    for ev in events:
        node = ev.node
        if node is None:
            continue
        if ev.name == "gateway.elect":
            cell = ev.fields.get("cell")
            if cell is None:
                continue
            prior = open_at.get(node)
            if prior is not None and prior[0] != cell:
                tenures.append((node, prior[0], prior[1], ev.t))
            if prior is None or prior[0] != cell:
                open_at[node] = (cell, ev.t)
        elif ev.name == "gateway.demote":
            prior = open_at.pop(node, None)
            if prior is not None:
                tenures.append((node, prior[0], prior[1], ev.t))
    for node, (cell, t0) in open_at.items():
        tenures.append((node, cell, t0, horizon))
    tenures.sort(key=lambda t: (t[2], t[0]))
    return tenures


def no_gateway_intervals(
    events: Iterable[TraceEvent], horizon: float,
    cells: Optional[Iterable[Cell]] = None,
) -> Dict[Cell, List[Tuple[float, float]]]:
    """Per-cell intervals during which *no* gateway covered the cell.

    Coverage is the union of the cell's gateway tenures; the complement
    within ``[0, horizon]`` is the no-gateway time.  ``cells`` defaults
    to every cell that ever had a gateway (a cell no host ever served
    has no baseline to measure against).
    """
    by_cell: Dict[Cell, List[Tuple[float, float]]] = {}
    for _node, cell, t0, t1 in gateway_tenures(events, horizon):
        by_cell.setdefault(cell, []).append((t0, t1))
    if cells is None:
        cells = by_cell.keys()
    out: Dict[Cell, List[Tuple[float, float]]] = {}
    for cell in cells:
        covered = sorted(by_cell.get(cell, []))
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for t0, t1 in covered:
            if t0 > cursor:
                gaps.append((cursor, t0))
            cursor = max(cursor, t1)
        if cursor < horizon:
            gaps.append((cursor, horizon))
        out[cell] = gaps
    return out


def percentiles(
    values: List[float], qs: Iterable[float] = (0, 25, 50, 75, 100)
) -> List[Tuple[float, float]]:
    """``(q, value)`` points of the empirical distribution (nearest
    rank), or an empty list for no samples."""
    if not values:
        return []
    data = sorted(values)
    out = []
    for q in qs:
        idx = min(len(data) - 1, max(0, round(q / 100.0 * (len(data) - 1))))
        out.append((float(q), data[idx]))
    return out
