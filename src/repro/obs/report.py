"""Trace-derived analysis panels.

Reduces ``gateway`` / ``cell`` trace streams to the quantities the
paper's Fig. 6–8 discussion needs but the metrics layer never measured:
per-gateway tenure intervals and per-cell no-gateway intervals (how
long a grid sat without any gateway — ECGRID's wakeup guarantee breaks
exactly while a cell is uncovered).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import TraceEvent

Cell = Tuple[int, int]
#: (node, cell, t_start, t_end) of one gateway tenure.
Tenure = Tuple[int, Cell, float, float]


#: Event names that end a node's gateway tenure.  A gateway normally
#: emits ``gateway.demote`` (a ``reason="death"`` demote precedes the
#: role flip on battery exhaustion), but that event can be missing from
#: the stream the caller has — ring-buffer eviction, a filtered export,
#: or a crash injected before the demote made it out — so a node-death
#: event closes any tenure still open for that node.
_TENURE_CLOSERS = ("gateway.demote", "fault.crash", "node.death")


def gateway_tenures(
    events: Iterable[TraceEvent], horizon: float
) -> List[Tenure]:
    """Per-gateway tenure intervals from ``gateway.elect`` /
    ``gateway.demote`` events.  Tenures still open at ``horizon`` are
    closed there.

    A node-death event (``fault.crash`` with ``applied`` truthy, or
    ``node.death``) also closes the node's open tenure: a crashed
    gateway stops covering its cell at the crash, whether or not its
    ``gateway.demote`` survived into ``events``.  Callers analysing
    faulted runs should therefore pass the merged ``gateway`` +
    ``fault`` streams, time-ordered.
    """
    open_at: Dict[int, Tuple[Cell, float]] = {}
    tenures: List[Tenure] = []
    for ev in events:
        node = ev.node
        if node is None:
            continue
        if ev.name == "gateway.elect":
            cell = ev.fields.get("cell")
            if cell is None:
                continue
            prior = open_at.get(node)
            if prior is not None and prior[0] != cell:
                tenures.append((node, prior[0], prior[1], ev.t))
            if prior is None or prior[0] != cell:
                open_at[node] = (cell, ev.t)
        elif ev.name in _TENURE_CLOSERS:
            if ev.name == "fault.crash" and not ev.fields.get(
                "applied", True
            ):
                continue  # the crash hit an already-dead node
            prior = open_at.pop(node, None)
            if prior is not None:
                tenures.append((node, prior[0], prior[1], ev.t))
    for node, (cell, t0) in open_at.items():
        tenures.append((node, cell, t0, horizon))
    tenures.sort(key=lambda t: (t[2], t[0]))
    return tenures


def no_gateway_intervals(
    events: Iterable[TraceEvent], horizon: float,
    cells: Optional[Iterable[Cell]] = None,
) -> Dict[Cell, List[Tuple[float, float]]]:
    """Per-cell intervals during which *no* gateway covered the cell.

    Coverage is the union of the cell's gateway tenures; the complement
    within ``[0, horizon]`` is the no-gateway time.  ``cells`` defaults
    to every cell that ever had a gateway (a cell no host ever served
    has no baseline to measure against).
    """
    by_cell: Dict[Cell, List[Tuple[float, float]]] = {}
    for _node, cell, t0, t1 in gateway_tenures(events, horizon):
        by_cell.setdefault(cell, []).append((t0, t1))
    if cells is None:
        cells = by_cell.keys()
    out: Dict[Cell, List[Tuple[float, float]]] = {}
    for cell in cells:
        covered = sorted(by_cell.get(cell, []))
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for t0, t1 in covered:
            if t0 > cursor:
                gaps.append((cursor, t0))
            cursor = max(cursor, t1)
        if cursor < horizon:
            gaps.append((cursor, horizon))
        out[cell] = gaps
    return out


def percentiles(
    values: List[float], qs: Iterable[float] = (0, 25, 50, 75, 100)
) -> List[Tuple[float, float]]:
    """``(q, value)`` points of the empirical distribution (nearest
    rank), or an empty list for no samples.

    Nearest rank proper: the q-th percentile is the smallest sample
    with at least ``q``\\ % of the distribution at or below it —
    ``ceil(q/100 * n)``, 1-indexed.  (An earlier version rounded a
    linear-interpolation index, and Python's banker's rounding —
    ``round(0.5) == 0`` — pulled small-sample quartiles down a rank.)
    """
    if not values:
        return []
    data = sorted(values)
    n = len(data)
    out = []
    for q in qs:
        # q * n first: q/100*n computes 0.07*100 = 7.000000000000001,
        # and ceil would bump the rank; q*n/100 is exact whenever the
        # true rank is an integer.
        rank = math.ceil(q * n / 100.0)
        idx = min(n - 1, max(0, rank - 1))
        out.append((float(q), data[idx]))
    return out
