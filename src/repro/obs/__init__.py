"""Observability: structured tracing, counter registry, invariant
auditors (see ``docs/observability.md``)."""

from repro.obs.audit import (
    Auditor,
    AuditViolation,
    BufferFlushAuditor,
    ConservationAuditor,
    GatewayUniquenessAuditor,
    SleepingTransmitAuditor,
    audit_report,
    standard_auditors,
)
from repro.obs.counters import CounterRegistry
from repro.obs.report import gateway_tenures, no_gateway_intervals, percentiles
from repro.obs.trace import (
    CATEGORIES,
    DEFAULT_CATEGORIES,
    NULL_TRACER,
    TRACE_JSONL_SCHEMA,
    NullTracer,
    TraceEvent,
    Tracer,
    load_jsonl,
)

__all__ = [
    "Auditor",
    "AuditViolation",
    "BufferFlushAuditor",
    "ConservationAuditor",
    "GatewayUniquenessAuditor",
    "SleepingTransmitAuditor",
    "audit_report",
    "standard_auditors",
    "CounterRegistry",
    "gateway_tenures",
    "no_gateway_intervals",
    "percentiles",
    "CATEGORIES",
    "DEFAULT_CATEGORIES",
    "NULL_TRACER",
    "TRACE_JSONL_SCHEMA",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "load_jsonl",
]
