"""The counter registry: counters, gauges and histograms under
hierarchical dotted names.

:class:`CounterRegistry` generalizes the ad-hoc tally dict the metrics
layer grew up with.  Its counter surface (``inc`` / ``get`` /
``snapshot`` / ``__getitem__``) is byte-for-byte compatible with the
original ``metrics.collectors.Counters`` — which is now a subclass — so
every existing protocol counter, experiment readout and golden digest
is unchanged.  On top of counters it adds:

- **gauges**: last-written values (``set_gauge`` / ``gauge``);
- **histograms**: streaming count/total/min/max summaries
  (``observe`` / ``histogram``), cheap enough for per-dispatch use;
- **snapshot-at-time**: :meth:`snapshot_at` appends timestamped counter
  snapshots to a timeline for before/after comparisons;
- **hierarchical names**: dotted names with :meth:`subtree` filtering
  (``registry.subtree("page")`` -> every ``page.*`` tally).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple


class _Histogram:
    """Streaming summary of observed values (no per-sample storage)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class CounterRegistry:
    """Named counters/gauges/histograms shared across a scenario."""

    def __init__(self) -> None:
        self._c: Dict[str, int] = defaultdict(int)
        self._gauges: Dict[str, float] = {}
        self._hist: Dict[str, _Histogram] = {}
        self._timeline: List[Tuple[float, Dict[str, int]]] = []

    # ------------------------------------------------------------------
    # Counters (the legacy ``Counters`` contract — do not change the
    # semantics: ``inc`` inserts the key even at amount 0, ``get`` and
    # ``__getitem__`` never insert, ``snapshot`` is a plain dict copy.
    # The golden kernel digests hash ``snapshot()``.)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self._c[name] += amount

    def get(self, name: str, default: int = 0) -> int:
        return self._c.get(name, default)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._c)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        hist = self._hist.get(name)
        if hist is None:
            hist = self._hist[name] = _Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Optional[Dict[str, float]]:
        hist = self._hist.get(name)
        return None if hist is None else hist.summary()

    def histograms(self) -> Dict[str, Dict[str, float]]:
        return {name: h.summary() for name, h in self._hist.items()}

    # ------------------------------------------------------------------
    # Snapshot-at-time
    # ------------------------------------------------------------------
    def snapshot_at(self, t: float) -> Dict[str, int]:
        """Record (and return) the counter snapshot at time ``t``."""
        snap = self.snapshot()
        self._timeline.append((t, snap))
        return snap

    def timeline(self) -> List[Tuple[float, Dict[str, int]]]:
        return list(self._timeline)

    # ------------------------------------------------------------------
    # Hierarchical readout
    # ------------------------------------------------------------------
    def subtree(self, prefix: str) -> Dict[str, int]:
        """Counters named ``prefix`` or ``prefix.*``."""
        dotted = prefix + "."
        return {
            name: value
            for name, value in self._c.items()
            if name == prefix or name.startswith(dotted)
        }

    def summary(self) -> Dict[str, Any]:
        """Everything, for reports and JSON export."""
        return {
            "counters": self.snapshot(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }
