#!/usr/bin/env python3
"""What actually goes over the air — a wire-level look at ECGRID.

Attaches a promiscuous sniffer to the medium, runs a small scenario
through an election, a route discovery and a paged delivery, and
prints (a) the first frames of the election, (b) the discovery
exchange, (c) the traffic mix by frame kind and bytes.

Run:  python examples/wire_trace.py
"""

from repro import DataPacket
from repro.metrics.sniffer import Sniffer
from repro.net.network import Network, NetworkConfig
from repro.core.protocol import EcGridProtocol
from repro.mobility.static import StaticPosition
from repro.geo.vector import Vec2
from repro.protocols.base import ProtocolParams

POSITIONS = [
    Vec2(150.0, 150.0),   # S : gateway of (1,1)
    Vec2(130.0, 170.0),   # sleeper in (1,1)
    Vec2(350.0, 250.0),   # relay gateway of (3,2)
    Vec2(550.0, 350.0),   # D : gateway of (5,3)
    Vec2(570.0, 320.0),   # G : sleeper in (5,3)
]


def main() -> None:
    config = NetworkConfig(
        n_hosts=len(POSITIONS), width_m=600.0, height_m=400.0, seed=2,
    )
    net = Network(
        config,
        lambda node, params, counters: EcGridProtocol(node, params, counters),
        ProtocolParams(),
        mobility_factory=lambda _n, i: StaticPosition(POSITIONS[i]),
    )
    sniffer = Sniffer(net.medium)

    net.run(until=8.0)
    print("=== election traffic (first 12 frames) ===")
    print(sniffer.dump(list(sniffer.frames)[:12]))

    t0 = net.sim.now
    packet = DataPacket(src=0, dst=4, created_at=t0)
    net.packet_log.on_sent(packet)
    net.nodes[0].send_data(packet)
    net.sim.run(until=t0 + 2.0)

    print()
    print("=== route discovery + paged delivery (S -> sleeping G) ===")
    print(sniffer.dump(sniffer.between(t0, net.sim.now)))
    delivered = packet.uid in net.packet_log.delivered_at
    print(f"\ndelivered: {delivered}  "
          f"(pages sent: {net.counters.get('pages_sent')})")

    print()
    print("=== traffic mix ===")
    counts = sniffer.kind_counts()
    by_bytes = sniffer.bytes_by_kind()
    for kind in sorted(counts, key=lambda k: -by_bytes[k]):
        print(f"  {kind:<14s} {counts[kind]:4d} frames  "
              f"{by_bytes[kind]:6d} bytes")


if __name__ == "__main__":
    main()
