#!/usr/bin/env python3
"""GRID vs ECGRID vs GAF — Figures 4 and 5 in one run.

Reproduces the paper's headline comparison at a configurable scale:
network lifetime and mean per-host energy over time for the three
protocols under identical workloads.  At --scale 1.0 this is the exact
paper scenario (100 hosts, 1 km^2, 500 J, 2000 s) and takes a few
minutes; the default 0.25 runs in seconds.

Run:  python examples/protocol_faceoff.py [--scale 0.25] [--speed 1]
"""

import argparse

from repro.api import (
    ExperimentConfig,
    FigureData,
    SweepSpec,
    sparkline,
    sweep,
)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument("--speed", type=float, default=1.0)
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    print(f"running GRID / ECGRID / GAF at scale {args.scale}, "
          f"speed {args.speed} m/s ...")
    # The shared workload behind Figs. 4 and 5, declared as one sweep
    # (same grid figures.lifetime_spec builds internally).
    run = sweep(SweepSpec(
        name="faceoff",
        base=ExperimentConfig(max_speed_mps=args.speed, pause_time_s=0.0),
        axes={"protocol": ["grid", "ecgrid", "gaf"], "seed": [args.seed]},
        scale=args.scale,
    ))
    runs = {o.point.axes["protocol"]: o.result for o in run.outcomes}

    print()
    print(FigureData(
        "fig4",
        f"Fraction of alive hosts vs time (speed {args.speed} m/s)",
        "t(s)", "alive fraction",
        {p: list(r.alive_fraction) for p, r in runs.items()},
        runs,
    ).to_text())
    print()
    print(FigureData(
        "fig5",
        f"Mean energy consumption per host (aen) vs time "
        f"(speed {args.speed} m/s)",
        "t(s)", "aen",
        {p: list(r.aen) for p, r in runs.items()},
        runs,
    ).to_text())

    print()
    print("summary:")
    for proto, r in runs.items():
        down = r.alive_fraction.first_time_below(0.05)
        down_s = f"{down:7.0f}s" if down is not None else "  >horizon"
        print(f"  {proto:8s} net-down {down_s}  "
              f"delivery {r.delivery_rate * 100:5.1f}%  "
              f"aen(end) {r.aen.last():.3f}  "
              f"|{sparkline(r.alive_fraction.values, width=40)}|")

    print()
    print("paper shape: GRID dies first (~E0/0.863W); ECGRID and GAF")
    print("both stretch the lifetime, GAF slightly ahead of ECGRID")
    print("(ECGRID pays HELLO maintenance for guaranteed wakeups).")


if __name__ == "__main__":
    main()
