#!/usr/bin/env python3
"""Gateway handoffs under mobility and failure — §3.2 live.

Builds a deterministic scenario around one grid cell and narrates the
gateway maintenance machinery: the initial election, a load-balance
retirement, a crash (no-gateway event), and recovery through the ACQ
handshake.  Useful both as a protocol walk-through and as a template
for instrumenting the library with custom probes.

Run:  python examples/gateway_churn.py
"""

from repro import DataPacket
from repro.core.base import Role
from repro.net.network import Network, NetworkConfig
from repro.core.protocol import EcGridProtocol
from repro.mobility.static import StaticPosition
from repro.geo.vector import Vec2
from repro.protocols.base import ProtocolParams

POSITIONS = [
    Vec2(50.0, 50.0),    # center of cell (0,0): wins the election
    Vec2(30.0, 40.0),
    Vec2(70.0, 65.0),
    Vec2(150.0, 50.0),   # neighbor cell (1,0)
]


def roles(net):
    return {n.id: n.protocol.role.value for n in net.nodes}


def main() -> None:
    config = NetworkConfig(
        n_hosts=len(POSITIONS),
        width_m=400.0,
        height_m=400.0,
        initial_energy_j=120.0,
        seed=1,
    )
    net = Network(
        config,
        lambda node, params, counters: EcGridProtocol(node, params, counters),
        ProtocolParams(),
        mobility_factory=lambda _n, i: StaticPosition(POSITIONS[i]),
    )

    print("t=0: all hosts active, HELLO exchange begins")
    net.run(until=8.0)
    print(f"t=8: after election  -> {roles(net)}")
    print(f"      cell (0,0) gateway host table: "
          f"{net.nodes[0].protocol.hosts.snapshot()}")

    # Drive the battery of the gateway down to force a load-balance
    # retirement at the 0.6 Rbrc band crossing.
    net.sim.run(until=60.0)
    print(f"t=60: gateway battery at "
          f"{net.nodes[0].rbrc() * 100:.0f}% -> {roles(net)}")
    print(f"      load-balance retirements so far: "
          f"{net.counters.get('load_balance_retirements')}")

    # Crash whoever is the gateway now: the grid must recover when a
    # sleeping member tries to transmit (no-gateway detection, §3.2).
    gw = next(n for n in net.nodes[:3] if n.protocol.role is Role.GATEWAY)
    print(f"t=60: CRASH gateway host {gw.id} (no RETIRE issued)")
    gw._on_depleted()

    sleeper = next(
        n for n in net.nodes[:3] if n.protocol.role is Role.SLEEPING
    )
    packet = DataPacket(src=sleeper.id, dst=3, created_at=net.sim.now)
    net.packet_log.on_sent(packet)
    sleeper.send_data(packet)
    net.sim.run(until=80.0)

    print(f"t=80: after recovery -> {roles(net)}")
    print(f"      no-gateway events: {net.counters.get('no_gateway_events')}, "
          f"elections: {net.counters.get('gateway_elections')}")
    delivered = packet.uid in net.packet_log.delivered_at
    print(f"      packet from the waking host delivered: {delivered}")


if __name__ == "__main__":
    main()
