#!/usr/bin/env python3
"""Regenerate every paper figure in one go and export CSVs.

The one-stop reproduction script: runs Figures 4–8 (both speeds where
the paper shows both) at the requested scale, prints each as a table,
and drops CSVs into ``--out`` for external plotting.  With
``--seeds N`` each curve is the mean over N seeds.

    python examples/paper_figures.py --scale 0.2 --out out/
    python examples/paper_figures.py --scale 1.0          # paper scale
"""

import argparse
import os

from repro.experiments import figures
from repro.experiments.export import figure_to_csv
from repro.experiments.stats import replicate_figure


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=0.2)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--seeds", type=int, default=1)
    ap.add_argument("--out", default=None, help="directory for CSV export")
    ap.add_argument("--speeds", type=float, nargs="+", default=[1.0, 10.0])
    args = ap.parse_args()

    if args.out:
        os.makedirs(args.out, exist_ok=True)

    jobs = []
    for speed in args.speeds:
        jobs += [
            (f"fig4_speed{speed:g}", figures.fig4, dict(speed=speed)),
            (f"fig5_speed{speed:g}", figures.fig5, dict(speed=speed)),
            (f"fig6_speed{speed:g}", figures.fig6, dict(speed=speed)),
            (f"fig7_speed{speed:g}", figures.fig7, dict(speed=speed)),
            (f"fig8_speed{speed:g}", figures.fig8, dict(speed=speed)),
        ]

    for name, fn, kwargs in jobs:
        print(f"\n=== {name} (scale {args.scale}) ===")
        if args.seeds > 1:
            fig = replicate_figure(
                fn,
                seeds=range(args.seed, args.seed + args.seeds),
                scale=args.scale,
                **kwargs,
            )
        else:
            fig = fn(scale=args.scale, seed=args.seed, **kwargs)
        print(fig.to_text())
        if args.out:
            path = os.path.join(args.out, f"{name}.csv")
            with open(path, "w") as fh:
                fh.write(figure_to_csv(fig))
            print(f"-> {path}")


if __name__ == "__main__":
    main()
