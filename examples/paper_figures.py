#!/usr/bin/env python3
"""Regenerate every paper figure in one go and export CSVs.

The one-stop reproduction script: runs Figures 4–8 (both speeds where
the paper shows both) at the requested scale through the sweep engine,
prints each as a table, and drops CSVs into ``--out`` for external
plotting.  With ``--seeds N`` each curve is the mean over N seeds
(stddev bands ride along in the JSON export); ``--workers N``
simulates grid points on N processes; repeated invocations only
simulate points whose config changed (``--cache-dir`` / ``--no-cache``).

    python examples/paper_figures.py --scale 0.2 --out out/
    python examples/paper_figures.py --scale 0.2 --seeds 4 --workers 4
    python examples/paper_figures.py --scale 1.0          # paper scale
"""

import argparse
import os

from repro.api import (
    ResultCache,
    SweepRunner,
    default_cache_dir,
    figure,
    figure_to_csv,
)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=0.2)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--seeds", type=int, default=1)
    ap.add_argument("--out", default=None, help="directory for CSV export")
    ap.add_argument("--speeds", type=float, nargs="+", default=[1.0, 10.0])
    ap.add_argument("--workers", type=int, default=0,
                    help="simulation processes (0 = inline serial)")
    ap.add_argument("--cache-dir", default=None)
    ap.add_argument("--no-cache", action="store_true")
    args = ap.parse_args()

    if args.out:
        os.makedirs(args.out, exist_ok=True)

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = SweepRunner(
        workers=args.workers,
        cache=cache,
        progress=lambda done, total, o: print(
            f"  [{done}/{total}] {o.point.key()}"
            f"{' (cached)' if o.cached else ''}"
        ),
    )

    for speed in args.speeds:
        for name in ("fig4", "fig5", "fig6", "fig7", "fig8"):
            print(f"\n=== {name}_speed{speed:g} (scale {args.scale}) ===")
            fig = figure(
                name,
                speed=speed,
                scale=args.scale,
                seed=args.seed,
                seeds=args.seeds,
                runner=runner,
            )
            print(fig.to_text())
            if args.out:
                path = os.path.join(args.out, f"{name}_speed{speed:g}.csv")
                with open(path, "w") as fh:
                    fh.write(figure_to_csv(fig))
                print(f"-> {path}")

    if cache is not None:
        print(f"\ncache: {cache.misses} simulated, {cache.hits} reused "
              f"({cache.root})")


if __name__ == "__main__":
    main()
