#!/usr/bin/env python3
"""Host-density sweep — the paper's Figure 8 experiment, interactively.

ECGRID keeps exactly one gateway per occupied grid awake, so the more
hosts share a grid the more of them sleep: network lifetime grows with
density.  GRID's lifetime is density-independent (everyone idles).

This script declares the whole grid as one ``SweepSpec`` (protocol x
density) and hands it to a ``SweepRunner`` — pass ``--workers N`` to
simulate the eight points on N processes instead of serially.

Run:  python examples/density_sweep.py [--workers 4]
"""

import argparse

from repro.api import (
    ExperimentConfig,
    SweepRunner,
    SweepSpec,
    format_summary_table,
    sparkline,
)

SCALE = 0.25
DENSITIES = (50, 100, 150, 200)     # paper's host counts (pre-scale)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--workers", type=int, default=0,
                    help="simulation processes (0 = inline serial)")
    args = ap.parse_args()

    spec = SweepSpec(
        name="density-sweep",
        base=ExperimentConfig(max_speed_mps=1.0, seed=3),
        axes={"protocol": ["grid", "ecgrid"], "hosts": list(DENSITIES)},
        scale=SCALE,
    )
    runner = SweepRunner(
        workers=args.workers,
        progress=lambda done, total, o: print(
            f"  done [{done}/{total}]: {o.point.key()} "
            f"-> n={o.point.config.n_hosts} ({o.result.wall_time_s:.1f}s sim wall)"
        ),
    )
    run = runner.run(spec)

    rows = []
    curves = {}
    for outcome in run.outcomes:
        cfg, r = outcome.point.config, outcome.result
        half_dead = r.alive_fraction.first_time_below(0.5)
        rows.append({
            "protocol": cfg.protocol,
            "hosts": cfg.n_hosts,
            "half_alive_s": (
                half_dead if half_dead is not None else cfg.sim_time_s
            ),
            "aen_end": r.aen.last(),
            "delivery_pct": r.delivery_rate * 100.0,
        })
        curves[f"{cfg.protocol}-n{cfg.n_hosts}"] = r.alive_fraction.values

    print()
    print(format_summary_table("Figure 8 (scaled): lifetime vs density", rows))
    print()
    print("alive-fraction curves (time left to right):")
    for label, values in curves.items():
        print(f"  {label:14s} |{sparkline(values, width=50)}|")
    print()
    print("Expected shape: grid-* rows all die at the same time; the")
    print("ecgrid-* half-alive times increase with host count.")


if __name__ == "__main__":
    main()
