#!/usr/bin/env python3
"""Host-density sweep — the paper's Figure 8 experiment, interactively.

ECGRID keeps exactly one gateway per occupied grid awake, so the more
hosts share a grid the more of them sleep: network lifetime grows with
density.  GRID's lifetime is density-independent (everyone idles).
This script sweeps density at a reduced scale and prints the half-alive
time per configuration.

Run:  python examples/density_sweep.py
"""

from repro import ExperimentConfig, run_experiment
from repro.experiments.report import format_summary_table, sparkline

SCALE = 0.25
DENSITIES = (50, 100, 150, 200)     # paper's host counts (pre-scale)


def main() -> None:
    rows = []
    curves = {}
    for protocol in ("grid", "ecgrid"):
        for n in DENSITIES:
            cfg = ExperimentConfig(
                protocol=protocol, n_hosts=n, max_speed_mps=1.0, seed=3
            ).scaled(SCALE)
            r = run_experiment(cfg)
            half_dead = r.alive_fraction.first_time_below(0.5)
            rows.append({
                "protocol": protocol,
                "hosts": cfg.n_hosts,
                "half_alive_s": (
                    half_dead if half_dead is not None else cfg.sim_time_s
                ),
                "aen_end": r.aen.last(),
                "delivery_pct": r.delivery_rate * 100.0,
            })
            curves[f"{protocol}-n{cfg.n_hosts}"] = r.alive_fraction.values
            print(f"  done: {protocol} n={cfg.n_hosts} "
                  f"({r.wall_time_s:.1f}s wall)")

    print()
    print(format_summary_table("Figure 8 (scaled): lifetime vs density", rows))
    print()
    print("alive-fraction curves (time left to right):")
    for label, values in curves.items():
        print(f"  {label:14s} |{sparkline(values, width=50)}|")
    print()
    print("Expected shape: grid-* rows all die at the same time; the")
    print("ecgrid-* half-alive times increase with host count.")


if __name__ == "__main__":
    main()
