#!/usr/bin/env python3
"""Disaster-relief deployment — the paper's motivating scenario (§1).

A MANET dropped into a disaster area with no infrastructure: a static
command post, field teams sweeping the area, and battery-powered radios
that must survive the whole operation.  We build the scenario directly
against the library's mid-level API (Network + explicit mobility
models) instead of the experiment harness, then compare ECGRID against
plain GRID on operation lifetime and message delivery.

Run:  python examples/disaster_relief.py
"""

from repro import GridProtocol, EcGridProtocol, NetworkConfig, Network, Vec2
from repro.mobility.static import StaticPosition
from repro.mobility.waypoint import RandomWaypoint
from repro.protocols.base import ProtocolParams
from repro.traffic.flowset import FlowSpec

AREA = 600.0
TEAMS = 40
OPERATION_S = 400.0
RADIO_ENERGY_J = 300.0

COMMAND_POST = Vec2(400.0, 400.0)


def build(protocol_cls):
    config = NetworkConfig(
        width_m=AREA,
        height_m=AREA,
        n_hosts=TEAMS + 1,          # field teams + command post
        initial_energy_j=RADIO_ENERGY_J,
        seed=7,
    )

    def mobility(network, node_id):
        if node_id == 0:
            return StaticPosition(COMMAND_POST)   # command post
        return RandomWaypoint(
            network.sim.rng.stream(f"team-{node_id}"),
            AREA, AREA,
            min_speed=0.5, max_speed=2.0,          # people on foot
            pause_time=30.0,                       # working a site
        )

    net = Network(
        config,
        lambda node, params, counters: protocol_cls(node, params, counters),
        ProtocolParams(),
        mobility_factory=mobility,
    )
    # Every team periodically reports to the command post, and the post
    # pushes tasking to three team leads.
    specs = [FlowSpec(src_id=i, dst_id=0, rate_pps=0.2) for i in range(1, 11)]
    specs += [FlowSpec(src_id=0, dst_id=i, rate_pps=0.5) for i in (5, 12, 20)]
    net.add_flows(specs)
    return net


def report(name, net):
    log = net.packet_log
    print(f"  {name:8s}  alive {net.alive_fraction() * 100:5.1f}%   "
          f"aen {net.aen():.3f}   "
          f"delivered {log.delivery_rate() * 100:5.1f}% "
          f"({log.delivered_count}/{log.sent_count})   "
          f"latency {log.mean_latency() * 1000:6.1f} ms")


def main() -> None:
    print(f"disaster relief: {TEAMS} teams + command post, "
          f"{AREA:.0f} m square, {OPERATION_S:.0f} s operation")
    for name, cls in (("GRID", GridProtocol), ("ECGRID", EcGridProtocol)):
        net = build(cls)
        net.run(until=OPERATION_S)
        report(name, net)

    print()
    print("ECGRID keeps the field radios alive by sleeping everyone who")
    print("is not currently the grid gateway; the RAS pages teams awake")
    print("the moment the command post has traffic for them.")


if __name__ == "__main__":
    main()
