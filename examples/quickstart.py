#!/usr/bin/env python3
"""Quickstart: run ECGRID on a small MANET and read the results.

This is the 60-second tour of the public API: configure a scenario,
run it, inspect delivery / latency / energy, and peek at the protocol
counters.  Scale up ``n_hosts``/``sim_time_s`` toward the paper's
values (100 hosts, 2000 s) when you have a minute to spare.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment


def main() -> None:
    config = ExperimentConfig(
        protocol="ecgrid",      # or "grid", "gaf", "flooding"
        n_hosts=40,
        width_m=650.0,
        height_m=650.0,
        max_speed_mps=1.0,      # paper speed range (a)
        pause_time_s=0.0,       # constant mobility
        n_flows=4,
        flow_rate_pps=1.0,
        initial_energy_j=200.0,
        sim_time_s=300.0,
        seed=42,
    )
    print(f"running: {config.describe()}")
    result = run_experiment(config)

    print()
    print(result.summary())

    print()
    print("alive-host fraction over time:")
    for t, frac in result.alive_fraction.rows()[::3]:
        bar = "#" * int(frac * 40)
        print(f"  t={t:6.0f}s  {frac:5.2f}  {bar}")

    print()
    print("protocol activity:")
    for key in (
        "gateway_elections",
        "gateway_moves",
        "load_balance_retirements",
        "sleeps",
        "pages_sent",
        "hello_sent",
        "rreq_originated",
    ):
        print(f"  {key:28s} {result.counters.get(key, 0)}")


if __name__ == "__main__":
    main()
